package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
)

// Scenario describes one load/soak run: the target, the fleet shape, the
// workload mix, and the measurement cadences. The zero value plus fill()
// yields the default mix cmd/steerload and the short-mode soak test use.
type Scenario struct {
	// Addr targets a live steerd listener ("host:port"). Empty starts an
	// in-process hub on a loopback TCP listener — still the real wire path
	// (client → TCP → hub → journal → client), just self-hosted, which is
	// what CI runs.
	Addr string `json:"addr,omitempty"`

	// Sessions is the number of steering sessions to drive (in-process
	// mode creates them; remote mode requires ≥ that many sessions served
	// by the target, named by SessionNames or steerd's -sessions scheme).
	Sessions int `json:"sessions"`
	// ClientsPerSession is the fleet size per session. One client is the
	// steerer (attaches WantMaster and drives SetParam); when Floor is on,
	// two are floor contenders; when Churn is on, two slots cycle
	// attach/detach; the rest are steady observers.
	ClientsPerSession int `json:"clients_per_session"`
	// SessionNames overrides the session names driven in remote mode;
	// empty derives "soak-00".."soak-NN" (in-process) or the target's
	// default session (remote, Sessions == 1).
	SessionNames []string `json:"session_names,omitempty"`

	// Duration bounds the run.
	Duration time.Duration `json:"duration_ns"`

	// SteerInterval is the cadence of the steerer's SetParam round trips.
	SteerInterval time.Duration `json:"steer_interval_ns"`
	// SampleInterval is the in-process application's steady emission
	// cadence (the broadcast fan-out load under the steering latency).
	SampleInterval time.Duration `json:"sample_interval_ns"`
	// BurstChannels is the number of data channels per emitted sample
	// (clamped to the paper-faithful 16); BurstLen is the float count per
	// channel. Together they size the broadcast payload.
	BurstChannels int `json:"burst_channels"`
	BurstLen      int `json:"burst_len"`
	// PayloadBytes, when positive, adds one bulk "payload" channel of
	// ~PayloadBytes to every emitted sample (in-process mode): the
	// large-frame workload that exercises the hub's zero-copy writev
	// egress, where each frame rides as its own iovec entry instead of
	// being memcpy'd through the buffered writer.
	PayloadBytes int `json:"payload_bytes,omitempty"`

	// Churn cycles two client slots per session through
	// attach → dwell → detach, measuring attach latency (which, with
	// Journal on, is the late-joiner replay flood path).
	Churn bool `json:"churn"`
	// ChurnDwell is how long a churning client stays attached.
	ChurnDwell time.Duration `json:"churn_dwell_ns,omitempty"`
	// Floor turns on the floor-contention storm: contenders hammer
	// TryRequestMaster against the held floor (expected denials) and
	// periodically queue-then-withdraw blocking requests.
	Floor bool `json:"floor"`
	// FloorInterval is the cadence of each contender's floor probes.
	FloorInterval time.Duration `json:"floor_interval_ns,omitempty"`

	// ObserverTier attaches the steady observers at core.TierObserver with
	// selective subscriptions: a fraction ObserverInterest of them
	// subscribe to the live "echo" channel (and so receive every sample),
	// the rest to a channel that never appears (and so receive nothing) —
	// the interest-managed fan-out shape of a big collaborative viewing
	// audience. Local mode only; remote observers attach as before.
	ObserverTier bool `json:"observer_tier"`
	// ObserverInterest is the interested fraction (default 0.01); at least
	// one observer per session is always interested so steer→observe keeps
	// recording.
	ObserverInterest float64 `json:"observer_interest,omitempty"`
	// ObserverInterval sets the in-process sessions' observer coalescing
	// cadence (0 keeps core's default, negative flushes immediately).
	ObserverInterval time.Duration `json:"observer_interval_ns,omitempty"`
	// FanoutWorkers sizes the in-process sessions' relay pool (0 = auto).
	FanoutWorkers int `json:"fanout_workers,omitempty"`

	// TCPDelay re-enables Nagle's algorithm on the fleet's client conns
	// and (in-process mode) the hub's accepted conns; the default keeps
	// TCP_NODELAY on. TCPRcvBuf/TCPSndBuf set SO_RCVBUF/SO_SNDBUF in
	// bytes when positive, both sides in in-process mode.
	TCPDelay  bool `json:"tcp_delay,omitempty"`
	TCPRcvBuf int  `json:"tcp_rcvbuf,omitempty"`
	TCPSndBuf int  `json:"tcp_sndbuf,omitempty"`

	// Journal gives in-process sessions durable journals in a temp
	// directory, so churn exercises replay catch-up. Ignored in remote
	// mode (the target's configuration decides).
	Journal bool `json:"journal"`
	// MasterLease configures the in-process sessions' lease.
	MasterLease time.Duration `json:"master_lease_ns,omitempty"`

	// Param is the steered parameter name in remote mode (default
	// "miscibility-g", steerd's LB demo parameter); ParamMin/ParamMax
	// bound the values sent. In-process mode ignores these: the echo app
	// registers its own wide-range parameter.
	Param    string  `json:"param,omitempty"`
	ParamMin float64 `json:"param_min,omitempty"`
	ParamMax float64 `json:"param_max,omitempty"`
}

func (sc *Scenario) fill() {
	if sc.Sessions <= 0 {
		sc.Sessions = 4
	}
	if sc.ClientsPerSession <= 0 {
		sc.ClientsPerSession = 64
	}
	if sc.Duration <= 0 {
		sc.Duration = 20 * time.Second
	}
	if sc.SteerInterval <= 0 {
		sc.SteerInterval = 10 * time.Millisecond
	}
	if sc.SampleInterval <= 0 {
		sc.SampleInterval = 5 * time.Millisecond
	}
	if sc.BurstChannels <= 0 {
		sc.BurstChannels = 2
	}
	if sc.BurstChannels > 16 {
		sc.BurstChannels = 16 // the protocol's per-sample channel budget
	}
	if sc.BurstLen <= 0 {
		sc.BurstLen = 64
	}
	if sc.ChurnDwell <= 0 {
		sc.ChurnDwell = 150 * time.Millisecond
	}
	if sc.ObserverInterest <= 0 || sc.ObserverInterest > 1 {
		sc.ObserverInterest = 0.01
	}
	if sc.FloorInterval <= 0 {
		sc.FloorInterval = 20 * time.Millisecond
	}
	if sc.MasterLease == 0 {
		sc.MasterLease = 5 * time.Second
	}
	if sc.Param == "" {
		sc.Param = "miscibility-g"
		sc.ParamMin, sc.ParamMax = 0, 6
	}
}

// sockOpts maps the scenario's TCP knobs onto core.SockOpts, applied to the
// fleet's dialed conns and (in-process mode) the hub's accepted conns.
func (sc *Scenario) sockOpts() core.SockOpts {
	return core.SockOpts{Delay: sc.TCPDelay, RcvBuf: sc.TCPRcvBuf, SndBuf: sc.TCPSndBuf}
}

// Counters are the run's cumulative event counts, separate from the latency
// distributions.
type Counters struct {
	Steers           uint64 `json:"steers"`
	SteerErrs        uint64 `json:"steer_errs"`
	SamplesObserved  uint64 `json:"samples_observed"`
	Attaches         uint64 `json:"attaches"`
	AttachErrs       uint64 `json:"attach_errs"`
	Churns           uint64 `json:"churns"`
	FloorDenials     uint64 `json:"floor_denials"`
	FloorWithdrawals uint64 `json:"floor_withdrawals"`
	UnexpectedGrants uint64 `json:"unexpected_grants"`
}

// HubStats is the subset of hub.Stats the result embeds (duplicated here so
// loadgen's JSON shape doesn't chase hub's internal struct).
type HubStats struct {
	Sessions         int     `json:"sessions"`
	Clients          int     `json:"clients"`
	SamplesEmitted   uint64  `json:"samples_emitted"`
	SamplesDelivered uint64  `json:"samples_delivered"`
	SamplesDropped   uint64  `json:"samples_dropped"`
	SteersApplied    uint64  `json:"steers_applied"`
	FloorGrants      uint64  `json:"floor_grants"`
	FloorDenials     uint64  `json:"floor_denials"`
	FloorExpiries    uint64  `json:"floor_expiries"`
	TierSteerers     int     `json:"tier_steerers,omitempty"`
	TierObservers    int     `json:"tier_observers,omitempty"`
	FramesFiltered   uint64  `json:"frames_filtered,omitempty"`
	RelayPublished   uint64  `json:"relay_published,omitempty"`
	RelayCoalesced   uint64  `json:"relay_coalesced,omitempty"`
	EgressVectored   uint64  `json:"egress_vectored,omitempty"`
	EgressBuffered   uint64  `json:"egress_buffered,omitempty"`
	EgressCoalesced  uint64  `json:"egress_bytes_coalesced,omitempty"`
	EgressZeroCopy   uint64  `json:"egress_bytes_zero_copy,omitempty"`
	EgressSyscalls   uint64  `json:"egress_syscalls_saved,omitempty"`
	SamplesPerSec    float64 `json:"samples_per_sec"`
}

// Result is one completed run: the scenario, the latency distributions, the
// event counters, and (in-process mode) the hub's own view of the traffic.
//
// Histogram keys:
//
//	steer_observe — master's SetParam send → any observer seeing the new
//	                value arrive on the sample stream (the paper's
//	                steer→apply→observe round trip, the headline number)
//	steer_ack     — master's SetParam send → session ack (control-plane RTT)
//	attach        — dial → welcome, including journal replay for late joiners
//	sample_gap    — inter-arrival spacing of samples at one observer per
//	                session (fan-out jitter)
//	floor_deny    — TryRequestMaster send → explicit ErrFloorHeld denial
type Result struct {
	Scenario Scenario                 `json:"scenario"`
	Start    time.Time                `json:"start"`
	Elapsed  time.Duration            `json:"elapsed_ns"`
	Hist     map[string]*HistSnapshot `json:"hist"`
	Counters Counters                 `json:"counters"`
	Hub      *HubStats                `json:"hub,omitempty"`
}

// Bench flattens the result into cmd/benchcompare's baseline shape:
// {"meta": ..., "bench": {"LoadSteerObserve/p99": {"ns_op": ...}, ...}}.
// Only distributions that actually recorded anything are emitted, so a
// remote run (no echo channel → no steer_observe) produces a comparable
// file without zero-filled keys.
func (r *Result) Bench() map[string]map[string]float64 {
	names := map[string]string{
		"steer_observe": "LoadSteerObserve",
		"steer_ack":     "LoadSteerAck",
		"attach":        "LoadAttach",
		"sample_gap":    "LoadSampleGap",
		"floor_deny":    "LoadFloorDeny",
	}
	out := make(map[string]map[string]float64)
	for key, s := range r.Hist {
		bench, ok := names[key]
		if !ok || s == nil || s.Count == 0 {
			continue
		}
		for q, v := range map[string]int64{
			"p50": s.P50, "p90": s.P90, "p99": s.P99, "p999": s.P999, "max": s.Max,
		} {
			out[bench+"/"+q] = map[string]float64{"ns_op": float64(v)}
		}
	}
	return out
}

// WriteJSON emits the benchcompare-compatible document: free-form meta
// (scenario, counters, hub stats, full histogram snapshots) plus the flat
// "bench" table cmd/benchcompare diffs against a committed baseline.
func (r *Result) WriteJSON(w io.Writer) error {
	doc := map[string]any{
		"meta": map[string]any{
			"harness":     "steerload",
			"scenario":    r.Scenario,
			"start":       r.Start,
			"elapsed_ns":  r.Elapsed,
			"counters":    r.Counters,
			"hub":         r.Hub,
			"histograms":  r.Hist,
			"description": "steer→observe round-trip latency under load; see DESIGN.md §10.1",
		},
		"bench": r.Bench(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// String summarises the run for terminal output.
func (r *Result) String() string {
	line := func(key, label string) string {
		s := r.Hist[key]
		if s == nil || s.Count == 0 {
			return fmt.Sprintf("  %-14s (no observations)\n", label)
		}
		return fmt.Sprintf("  %-14s n=%-9d p50=%-10s p99=%-10s p999=%-10s max=%s\n",
			label, s.Count,
			time.Duration(s.P50), time.Duration(s.P99),
			time.Duration(s.P999), time.Duration(s.Max))
	}
	out := fmt.Sprintf("steerload: %d session(s) × %d client(s), %s elapsed\n",
		r.Scenario.Sessions, r.Scenario.ClientsPerSession, r.Elapsed.Round(time.Millisecond))
	out += line("steer_observe", "steer→observe")
	out += line("steer_ack", "steer→ack")
	out += line("attach", "attach")
	out += line("sample_gap", "sample gap")
	out += line("floor_deny", "floor deny")
	c := r.Counters
	out += fmt.Sprintf("  steers=%d (errs=%d) samples=%d attaches=%d (errs=%d) churns=%d denials=%d withdrawals=%d\n",
		c.Steers, c.SteerErrs, c.SamplesObserved, c.Attaches, c.AttachErrs,
		c.Churns, c.FloorDenials, c.FloorWithdrawals)
	if r.Hub != nil {
		out += fmt.Sprintf("  hub: emitted=%d delivered=%d dropped=%d applied=%d grants=%d denials=%d rate=%.0f/s\n",
			r.Hub.SamplesEmitted, r.Hub.SamplesDelivered, r.Hub.SamplesDropped,
			r.Hub.SteersApplied, r.Hub.FloorGrants, r.Hub.FloorDenials, r.Hub.SamplesPerSec)
		if r.Scenario.ObserverTier {
			out += fmt.Sprintf("  tiers: steerers=%d observers=%d filtered=%d relayed=%d coalesced=%d\n",
				r.Hub.TierSteerers, r.Hub.TierObservers, r.Hub.FramesFiltered,
				r.Hub.RelayPublished, r.Hub.RelayCoalesced)
		}
	}
	return out
}
