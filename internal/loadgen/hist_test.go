package loadgen

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the log-linear bucket math: exact buckets below
// histSubCount, then histSubCount sub-buckets per power of two, and
// bucketUpper as the inverse of bucketFor at every boundary.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{histSubCount - 1, histSubCount - 1},
		{histSubCount, histSubCount},
		{2*histSubCount - 1, 2*histSubCount - 1},
		{2 * histSubCount, 2 * histSubCount},
		{1 << 63, histBucketCount - histSubCount},
		{^uint64(0), histBucketCount - 1},
	}
	for _, c := range cases {
		if got := bucketFor(c.v); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every value must land in a bucket whose range contains it, and
	// indices must be monotone in the value.
	prev := -1
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, 1<<20 + 12345, 1 << 40, 1 << 63, ^uint64(0)} {
		idx := bucketFor(v)
		if idx < 0 || idx >= histBucketCount {
			t.Fatalf("bucketFor(%d) = %d out of range [0, %d)", v, idx, histBucketCount)
		}
		if idx < prev {
			t.Fatalf("bucketFor not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		if upper := uint64(bucketUpper(idx)); v > upper && idx != histBucketCount-1 {
			t.Errorf("value %d above its bucket upper bound %d (idx %d)", v, upper, idx)
		}
		if idx > 0 {
			if lower := uint64(bucketUpper(idx-1)) + 1; v < lower {
				t.Errorf("value %d below its bucket lower bound %d (idx %d)", v, lower, idx)
			}
		}
	}
}

// TestQuantiles checks the quantile walk against a known distribution and
// the ≤ 1/histSubCount relative-error bound of the bucketing.
func TestQuantiles(t *testing.T) {
	var h Hist
	// 1..10000 ns, uniformly: p50 ≈ 5000, p99 ≈ 9900.
	for i := 1; i <= 10000; i++ {
		h.Record(time.Duration(i))
	}
	s := h.Snapshot()
	if s.Count != 10000 {
		t.Fatalf("count = %d, want 10000", s.Count)
	}
	check := func(name string, got int64, want float64) {
		t.Helper()
		rel := (float64(got) - want) / want
		if rel < -0.001 || rel > 2.0/histSubCount {
			t.Errorf("%s = %d, want ~%g (rel err %.4f)", name, got, want, rel)
		}
	}
	check("p50", s.P50, 5000)
	check("p90", s.P90, 9000)
	check("p99", s.P99, 9900)
	check("p999", s.P999, 9990)
	if s.Max != 10000 {
		t.Errorf("max = %d, want 10000", s.Max)
	}
	if s.MeanNs < 4900 || s.MeanNs > 5100 {
		t.Errorf("mean = %g, want ~5000.5", s.MeanNs)
	}
	// Quantiles never exceed the observed max even in the top bucket.
	if q := s.Quantile(1.0); q != 10000 {
		t.Errorf("p100 = %d, want clamp to max 10000", q)
	}
}

func TestHistEmptyAndNegative(t *testing.T) {
	var h Hist
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.P99 != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	h.Record(-5 * time.Second) // clock step: clamps to 0, never corrupts
	s = h.Snapshot()
	if s.Count != 1 || s.Max != 0 || s.P50 != 0 {
		t.Fatalf("negative record mishandled: %+v", s)
	}
}

func TestHistConcurrent(t *testing.T) {
	var h Hist
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(r.Intn(1_000_000)))
			}
		}(int64(g))
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
}

// TestHistRecordAllocFree is the ISSUE 6 acceptance check: the harness's
// record path must not allocate, so measuring never perturbs the hub under
// test.
func TestHistRecordAllocFree(t *testing.T) {
	var h Hist
	d := 137 * time.Microsecond
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(d)
	})
	if allocs > 0.1 {
		t.Fatalf("Record allocates %.2f allocs/op, want 0", allocs)
	}
}

func BenchmarkHistRecord(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := 42 * time.Microsecond
		for pb.Next() {
			h.Record(d)
		}
	})
}
