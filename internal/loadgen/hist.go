// Package loadgen is the load/soak harness behind cmd/steerload: workload
// actors that drive a live steering hub over real TCP — steady broadcast
// fan-out, attach/detach churn, floor request storms, late-joiner replay
// floods — and measure the paper's central latency, the steer→apply→observe
// round trip, with log-bucketed histograms whose record path never
// allocates (the harness must not perturb the hub it measures).
//
// The package has three layers: Hist (this file) is the concurrent
// HDR-style histogram; Scenario/Result (scenario.go) describe a workload
// and its machine-readable outcome, JSON-compatible with cmd/benchcompare
// baselines (BENCH_6.json); Run (run.go) spins the actors against an
// in-process hub or a remote steerd address.
package loadgen

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-linear bucketing: histSubCount linear sub-buckets per power of two of
// nanoseconds, the HdrHistogram shape. Relative quantile error is bounded by
// 1/histSubCount (~3%), and the whole table is a fixed array of atomics —
// Record is a few integer ops plus two atomic adds, zero allocations,
// concurrent-writer safe.
const (
	histSubBits     = 5
	histSubCount    = 1 << histSubBits
	histBucketCount = histSubCount + (64-histSubBits)*histSubCount
)

// Hist is a concurrent latency histogram over time.Duration values. The
// zero value is ready to use; all methods are safe for concurrent callers.
type Hist struct {
	buckets [histBucketCount]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Int64
}

// bucketFor maps a non-negative nanosecond value onto its bucket index.
func bucketFor(v uint64) int {
	b := bits.Len64(v >> histSubBits)
	if b == 0 {
		return int(v) // exact linear buckets 0..histSubCount-1
	}
	sub := int(v >> uint(b-1)) // top histSubBits+1 bits: [histSubCount, 2*histSubCount)
	return b*histSubCount + (sub - histSubCount)
}

// bucketUpper returns the largest value a bucket index covers.
func bucketUpper(idx int) int64 {
	if idx < histSubCount {
		return int64(idx)
	}
	b := idx / histSubCount
	sub := uint64(histSubCount + idx%histSubCount)
	return int64((sub+1)<<uint(b-1) - 1)
}

// Record adds one observation. Negative durations clamp to zero (a clock
// step mid-measurement must not corrupt the table). The path is
// allocation-free; TestHistRecordAllocFree enforces that.
//
//steer:hotpath
func (h *Hist) Record(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.buckets[bucketFor(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if int64(v) <= cur || h.max.CompareAndSwap(cur, int64(v)) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Snapshot copies the histogram into an immutable, queryable view.
// Concurrent Records during the copy may land on either side; a snapshot is
// consistent enough for reporting, exact once the writers have stopped.
func (h *Hist) Snapshot() *HistSnapshot {
	s := &HistSnapshot{
		Count: h.count.Load(),
		Max:   h.max.Load(),
	}
	sum := h.sum.Load()
	if s.Count > 0 {
		s.MeanNs = float64(sum) / float64(s.Count)
	}
	s.buckets = make([]uint64, histBucketCount)
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
	}
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	s.P999 = s.Quantile(0.999)
	return s
}

// HistSnapshot is a point-in-time view of a Hist with its headline
// quantiles precomputed for JSON emission (all values nanoseconds).
type HistSnapshot struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50    int64   `json:"p50_ns"`
	P90    int64   `json:"p90_ns"`
	P99    int64   `json:"p99_ns"`
	P999   int64   `json:"p999_ns"`
	Max    int64   `json:"max_ns"`

	buckets []uint64
}

// Quantile returns the value at quantile q in [0, 1]: the upper bound of
// the bucket containing the q-th ranked observation, clamped to the true
// observed maximum. Zero observations yield 0.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.buckets {
		cum += c
		if cum >= rank {
			v := bucketUpper(i)
			if v > s.Max {
				v = s.Max
			}
			return v
		}
	}
	return s.Max
}
