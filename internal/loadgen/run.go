package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/hub"
)

// echoParam is the steered parameter the in-process echo application
// registers: the steerer writes time-since-epoch nanoseconds into it, the
// application reflects the applied value on the sample stream's "echo"
// channel, and every observer turns the reflected value back into a
// steer→apply→observe round-trip latency. Nanosecond counts over any
// realistic soak stay far below float64's 53-bit integer ceiling.
const echoParam = "echo"

// appPollInterval is the in-process application's steering poll cadence —
// the simulated "loop boundary" at which queued steers apply. It is the
// floor under steer→observe latency, deliberately well below the default
// steer interval.
const appPollInterval = 500 * time.Microsecond

// counters is the atomic mirror of Counters shared by every actor.
type counters struct {
	steers, steerErrs, samples   atomic.Uint64
	attaches, attachErrs, churns atomic.Uint64
	denials, withdrawals, grants atomic.Uint64
}

func (c *counters) snapshot() Counters {
	return Counters{
		Steers:           c.steers.Load(),
		SteerErrs:        c.steerErrs.Load(),
		SamplesObserved:  c.samples.Load(),
		Attaches:         c.attaches.Load(),
		AttachErrs:       c.attachErrs.Load(),
		Churns:           c.churns.Load(),
		FloorDenials:     c.denials.Load(),
		FloorWithdrawals: c.withdrawals.Load(),
		UnexpectedGrants: c.grants.Load(),
	}
}

// runner carries one run's shared state across its actors.
type runner struct {
	sc    Scenario
	addr  string
	epoch time.Time
	local bool // in-process hub (echo channel active)

	steerObserve, steerAck, attach Hist
	sampleGap, floorDeny           Hist
	ct                             counters
}

// Run executes one scenario to completion and returns its Result. With
// Scenario.Addr empty it self-hosts: an in-process hub on a loopback TCP
// listener, one echo application per session — the full
// client→TCP→hub→journal→client loop without external orchestration. With
// Addr set it drives a live steerd; steer→observe needs the echo
// application, so a remote run reports control-plane RTT, attach and floor
// latencies only.
func Run(ctx context.Context, sc Scenario) (*Result, error) {
	sc.fill()
	r := &runner{sc: sc, epoch: time.Now(), local: sc.Addr == ""}

	var (
		h        *hub.Hub
		sessions []string
		appStop  chan struct{}
		appWG    sync.WaitGroup
	)
	if r.local {
		jdir := ""
		if sc.Journal {
			var err error
			jdir, err = os.MkdirTemp("", "steerload-journal-*")
			if err != nil {
				return nil, fmt.Errorf("loadgen: journal dir: %w", err)
			}
			defer os.RemoveAll(jdir)
		}
		h = hub.New(hub.Config{
			JournalDir: jdir,
			SessionDefaults: core.SessionConfig{
				FloorPolicy:      core.FloorFIFO,
				MasterLease:      sc.MasterLease,
				FanoutWorkers:    sc.FanoutWorkers,
				ObserverInterval: sc.ObserverInterval,
			},
			Sock: sc.sockOpts(),
		})
		defer h.Close()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("loadgen: listen: %w", err)
		}
		go h.Serve(l)
		r.addr = l.Addr().String()

		appStop = make(chan struct{})
		for i := 0; i < sc.Sessions; i++ {
			name := fmt.Sprintf("soak-%02d", i)
			sess, err := h.CreateSession(core.SessionConfig{Name: name, AppName: "steerload-echo"})
			if err != nil {
				return nil, fmt.Errorf("loadgen: create session: %w", err)
			}
			sessions = append(sessions, name)
			appWG.Add(1)
			go func() {
				defer appWG.Done()
				r.echoApp(sess, appStop)
			}()
		}
	} else {
		r.addr = sc.Addr
		sessions = sc.SessionNames
		if len(sessions) == 0 {
			if sc.Sessions == 1 {
				sessions = []string{""} // the target's default session
			} else {
				for i := 0; i < sc.Sessions; i++ {
					sessions = append(sessions, fmt.Sprintf("steerd-lb3d-%02d", i))
				}
			}
		}
	}

	if h != nil {
		h.Stats() // arm the rate window so the final Stats carries samples/sec
	}

	runCtx, cancel := context.WithTimeout(ctx, sc.Duration)
	defer cancel()
	start := time.Now()

	// Tier membership is a property of the live fleet — by the time the run
	// ends every client has detached and the counts read zero — so sample
	// it at half-duration, when the fleet is fully attached and steady.
	tierC := make(chan [2]int, 1)
	if h != nil {
		go func() {
			t := time.NewTimer(sc.Duration / 2)
			defer t.Stop()
			select {
			case <-t.C:
				st := h.Stats()
				tierC <- [2]int{st.TierSteerers, st.TierObservers}
			case <-runCtx.Done():
				tierC <- [2]int{0, 0}
			}
		}()
	}

	var wg sync.WaitGroup
	for _, name := range sessions {
		name := name
		observers := sc.ClientsPerSession - 1 // steerer takes one slot
		floorers, churners := 0, 0
		if sc.Floor && observers >= 2 {
			floorers = 2
			observers -= 2
		}
		if sc.Churn && observers >= 2 {
			churners = 2
			observers -= 2
		}

		// The steerer attaches strictly first: the session grants the floor
		// implicitly to the first participant, so letting 63 observers race
		// the steerer's attach hands mastership to a client that will never
		// release it and starves the whole floor storm. Every other actor
		// waits for masterUp, and the attach flood then contends against a
		// genuinely held floor, not an empty one.
		masterUp := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.steerer(runCtx, name, masterUp)
		}()
		for i := 0; i < observers; i++ {
			wg.Add(1)
			go func(idx, total int) {
				defer wg.Done()
				<-masterUp
				r.observer(runCtx, name, idx, total)
			}(i, observers)
		}
		for i := 0; i < floorers; i++ {
			wg.Add(1)
			go func(idx int) {
				defer wg.Done()
				<-masterUp
				r.floorer(runCtx, name, idx)
			}(i)
		}
		for i := 0; i < churners; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-masterUp
				r.churner(runCtx, name)
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{
		Scenario: sc,
		Start:    start,
		Elapsed:  elapsed,
		Hist: map[string]*HistSnapshot{
			"steer_observe": r.steerObserve.Snapshot(),
			"steer_ack":     r.steerAck.Snapshot(),
			"attach":        r.attach.Snapshot(),
			"sample_gap":    r.sampleGap.Snapshot(),
			"floor_deny":    r.floorDeny.Snapshot(),
		},
		Counters: r.ct.snapshot(),
	}
	if h != nil {
		st := h.Stats()
		tc := <-tierC
		st.TierSteerers, st.TierObservers = tc[0], tc[1]
		res.Hub = &HubStats{
			Sessions:         st.Sessions,
			Clients:          st.Clients,
			SamplesEmitted:   st.SamplesEmitted,
			SamplesDelivered: st.SamplesDelivered,
			SamplesDropped:   st.SamplesDropped,
			SteersApplied:    st.SteersApplied,
			FloorGrants:      st.FloorGrants,
			FloorDenials:     st.FloorDenials,
			FloorExpiries:    st.FloorExpiries,
			TierSteerers:     st.TierSteerers,
			TierObservers:    st.TierObservers,
			FramesFiltered:   st.FramesFiltered,
			RelayPublished:   st.RelayPublished,
			RelayCoalesced:   st.RelayCoalesced,
			EgressVectored:   st.EgressBatchesVectored,
			EgressBuffered:   st.EgressBatchesBuffered,
			EgressCoalesced:  st.EgressBytesCoalesced,
			EgressZeroCopy:   st.EgressBytesZeroCopy,
			EgressSyscalls:   st.EgressSyscallsSaved,
			SamplesPerSec:    st.SamplesPerSec,
		}
		close(appStop)
		appWG.Wait()
	}
	return res, nil
}

// echoApp is the in-process steered application: it polls steering ops at
// appPollInterval, reflects every applied echo value on the next sample's
// "echo" channel immediately, and keeps a steady SampleInterval emission
// going regardless — the broadcast fan-out load the latency is measured
// under.
func (r *runner) echoApp(sess *core.Session, stop <-chan struct{}) {
	st := sess.Steered()
	var echoBits atomic.Uint64
	var dirty atomic.Bool
	err := st.RegisterFloat(echoParam, 0, 0, math.MaxFloat64,
		"steer→observe echo timestamp (ns since scenario epoch)",
		func(v float64) {
			echoBits.Store(math.Float64bits(v))
			dirty.Store(true)
		})
	if err != nil {
		return
	}

	// Burst payload slices are built once and shared across samples: the
	// session encodes a broadcast before returning from Emit, and nothing
	// mutates the data afterwards.
	burst := make([]core.Channel, r.sc.BurstChannels-1)
	for i := range burst {
		data := make([]float64, r.sc.BurstLen)
		for j := range data {
			data[j] = float64(i*r.sc.BurstLen + j)
		}
		burst[i] = core.Channel{Dims: [3]int{len(data), 1, 1}, Data: data}
	}
	// -payload-bytes adds one bulk channel per sample: the large-frame
	// shape that drives the hub's zero-copy writev egress (each such frame
	// becomes its own iovec entry instead of a pass through the buffered
	// writer).
	var payload core.Channel
	if r.sc.PayloadBytes > 0 {
		data := make([]float64, (r.sc.PayloadBytes+7)/8)
		for j := range data {
			data[j] = float64(j)
		}
		payload = core.Channel{Dims: [3]int{len(data), 1, 1}, Data: data}
	}
	emit := func(step int64) {
		s := core.NewSample(step)
		s.Channels[echoParam] = core.Scalar(math.Float64frombits(echoBits.Load()))
		for i, ch := range burst {
			s.Channels[fmt.Sprintf("burst-%02d", i)] = ch
		}
		if payload.Data != nil {
			s.Channels["payload"] = payload
		}
		st.Emit(s)
	}

	poll := time.NewTicker(appPollInterval)
	defer poll.Stop()
	steady := time.NewTicker(r.sc.SampleInterval)
	defer steady.Stop()
	step := int64(0)
	for {
		select {
		case <-stop:
			return
		case <-poll.C:
			if st.Poll() == core.ControlStop {
				return
			}
			if dirty.Swap(false) {
				step++
				emit(step)
			}
		case <-steady.C:
			if st.Poll() == core.ControlStop {
				return
			}
			dirty.Store(false) // this emission carries the freshest value
			step++
			emit(step)
		}
	}
}

// dialAttach dials the target and performs the attach handshake under ctx.
func (r *runner) dialAttach(ctx context.Context, opts core.AttachOptions) (*core.Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", r.addr)
	if err != nil {
		return nil, err
	}
	r.sc.sockOpts().Apply(conn)
	return core.AttachContext(ctx, conn, opts)
}

// attachCounted wraps dialAttach with the attach histogram and counters.
// Late-run failures caused purely by the scenario deadline are not counted
// as errors.
func (r *runner) attachCounted(ctx context.Context, opts core.AttachOptions) (*core.Client, error) {
	t0 := time.Now()
	c, err := r.dialAttach(ctx, opts)
	if err != nil {
		if ctx.Err() == nil && !deadlineTimeout(ctx, err) {
			r.ct.attachErrs.Add(1)
		}
		return nil, err
	}
	r.attach.Record(time.Since(t0))
	r.ct.attaches.Add(1)
	return c, nil
}

// deadlineTimeout reports whether err is a timeout attributable to ctx's
// deadline having arrived. ctx.Err() alone is not a reliable witness: the
// socket deadline the dial and handshake derive from ctx fires on the
// netpoller's clock, while context.WithTimeout flips its state only when
// its own timer goroutine runs — under load (notably -race) the latter can
// lag by tens of milliseconds, so a deadline-caused i/o timeout surfaces
// while ctx.Err() still reads nil.
func deadlineTimeout(ctx context.Context, err error) bool {
	d, ok := ctx.Deadline()
	if !ok || time.Now().Before(d) {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// steerer is the session's master: it attaches WantMaster, closes masterUp,
// then drives SetParam round trips at SteerInterval, recording the ack RTT
// and (in local mode) stamping the echo parameter the observers measure
// against. Losing the floor (a contender won a race) is recovered by a
// blocking re-request, not counted as an error.
func (r *runner) steerer(ctx context.Context, session string, masterUp chan<- struct{}) {
	var upOnce sync.Once
	signalUp := func() { upOnce.Do(func() { close(masterUp) }) }
	defer signalUp() // a failed steerer must not wedge the waiting contenders
	c, err := r.attachCounted(ctx, core.AttachOptions{
		Session: session, WantMaster: true, SampleBuffer: 4,
	})
	if err != nil {
		return
	}
	defer c.Close()
	if c.Role() != core.RoleMaster {
		if err := c.RequestMaster(ctx); err != nil {
			return
		}
	}
	signalUp()

	param := echoParam
	if !r.local {
		param = r.sc.Param
	}
	tick := time.NewTicker(r.sc.SteerInterval)
	defer tick.Stop()
	n := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			var v float64
			if r.local {
				v = float64(time.Since(r.epoch).Nanoseconds())
			} else {
				// Sweep the remote parameter across its range.
				n++
				span := r.sc.ParamMax - r.sc.ParamMin
				v = r.sc.ParamMin + span*float64(n%100)/100
			}
			t0 := time.Now()
			sctx, scancel := context.WithTimeout(ctx, 2*time.Second)
			err := c.SetParamContext(sctx, param, v)
			scancel()
			switch {
			case err == nil:
				r.steerAck.Record(time.Since(t0))
				r.ct.steers.Add(1)
			case errors.Is(err, core.ErrNotMaster):
				if c.RequestMaster(ctx) != nil {
					return
				}
			default:
				if ctx.Err() != nil {
					return
				}
				r.ct.steerErrs.Add(1)
			}
		}
	}
}

// observer is a steady viewer: it consumes the sample stream, counts
// arrivals, and in local mode turns echoed steer timestamps into
// steer→observe latencies. Observer 0 of each session also records sample
// inter-arrival gaps (fan-out jitter — meaningful in remote mode too).
//
// With ObserverTier on (local mode), observers attach at core.TierObserver:
// the first ceil(total × ObserverInterest) subscribe to the echo channel —
// present in every emitted sample, so they receive the full stream through
// the relay workers — and the rest subscribe to a channel the application
// never emits, so the interest filter drops everything before their rings.
func (r *runner) observer(ctx context.Context, session string, idx, total int) {
	opts := core.AttachOptions{Session: session, SampleBuffer: 32}
	if r.sc.ObserverTier && r.local {
		opts.Tier = core.TierObserver
		interested := int(math.Ceil(float64(total) * r.sc.ObserverInterest))
		if interested < 1 {
			interested = 1
		}
		if idx < interested {
			opts.Subscriptions = []core.Subscription{core.ChannelSub(echoParam)}
		} else {
			opts.Subscriptions = []core.Subscription{core.ChannelSub("steerload-uninterested")}
		}
		// A 4k-observer fleet attaching in one instant measures a handshake
		// DoS, not relay delivery: ramp the fleet over the first third of
		// the run, interested observers (lowest idx) first, so steer→observe
		// is sampled against a steadily growing audience.
		if total > 1 {
			step := r.sc.Duration / 3 / time.Duration(total)
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Duration(idx) * step):
			}
		}
	}
	c, err := r.attachCounted(ctx, opts)
	if err != nil {
		return
	}
	defer c.Close()

	// Echo stamps older than this observer's own attach were broadcast (or
	// journal-replayed) before it was live: measuring them would fold the
	// observer's startup into the round-trip distribution.
	minEcho := float64(time.Since(r.epoch).Nanoseconds())
	lastEcho := 0.0
	var lastArrival time.Time
	for {
		select {
		case <-ctx.Done():
			return
		case s := <-c.Samples():
			if s == nil {
				continue
			}
			now := time.Now()
			r.ct.samples.Add(1)
			if idx == 0 {
				if !lastArrival.IsZero() {
					r.sampleGap.Record(now.Sub(lastArrival))
				}
				lastArrival = now
			}
			if v := s.Channels[echoParam].Value(); v > lastEcho {
				if v > minEcho {
					r.steerObserve.Record(now.Sub(r.epoch) - time.Duration(int64(v)))
				}
				lastEcho = v
			}
		}
	}
}

// churner cycles attach → dwell → detach, the late-joiner flood: with
// journaling on, every attach replays the session's accumulated history
// before going live, so the attach histogram is the replay-path latency.
func (r *runner) churner(ctx context.Context, session string) {
	for ctx.Err() == nil {
		c, err := r.attachCounted(ctx, core.AttachOptions{Session: session, SampleBuffer: 8})
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			// Transient refusal (e.g. handshake shed under overload):
			// back off briefly and retry.
			select {
			case <-ctx.Done():
				return
			case <-time.After(20 * time.Millisecond):
			}
			continue
		}
		dwell := time.NewTimer(r.sc.ChurnDwell)
	drain:
		for {
			select {
			case <-ctx.Done():
				dwell.Stop()
				c.Close()
				return
			case <-dwell.C:
				break drain
			case s := <-c.Samples():
				if s != nil {
					r.ct.samples.Add(1)
				}
			}
		}
		c.Close()
		r.ct.churns.Add(1)
	}
}

// floorer storms the floor: TryRequestMaster against the steerer's held
// floor must come back as an explicit, prompt denial (the floor_deny
// histogram measures how prompt); every fourth probe instead queues a
// blocking request and withdraws it, exercising the enqueue/withdraw path
// under churn. A race the contender wins (the steerer was between floors)
// is released immediately and counted, not left to wedge the scenario.
func (r *runner) floorer(ctx context.Context, session string, idx int) {
	c, err := r.attachCounted(ctx, core.AttachOptions{Session: session, SampleBuffer: 4})
	if err != nil {
		return
	}
	defer c.Close()

	tick := time.NewTicker(r.sc.FloorInterval)
	defer tick.Stop()
	n := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			n++
			if n%4 == 0 {
				// Queue-then-withdraw: the request parks behind the holder,
				// then the cancelled context withdraws it.
				qctx, qcancel := context.WithTimeout(ctx, r.sc.FloorInterval)
				err := c.RequestMaster(qctx)
				qcancel()
				switch {
				case err == nil:
					r.ct.grants.Add(1)
					c.ReleaseMaster(time.Second)
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					r.ct.withdrawals.Add(1)
				}
				continue
			}
			t0 := time.Now()
			err := c.TryRequestMaster(2 * time.Second)
			switch {
			case err == nil:
				r.ct.grants.Add(1)
				c.ReleaseMaster(time.Second)
			case errors.Is(err, core.ErrFloorHeld):
				r.floorDeny.Record(time.Since(t0))
				r.ct.denials.Add(1)
			}
		}
	}
}
