package journal

import "os"

// dirLock holds (or stands in for) a journal directory's cross-process
// advisory lock. On platforms without flock semantics lockDir returns a
// handle with a nil file — still a valid, closable lock object, so no
// caller ever branches on platform. Close is idempotent and safe on a nil
// receiver: every unlock path (Open's error unwinding, Journal.Close) may
// call it unconditionally.
type dirLock struct {
	f *os.File
}

// Close releases the advisory lock, if one is held. Safe on nil receivers,
// nil files and repeated calls.
func (l *dirLock) Close() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	return f.Close()
}

// Locked reports whether the handle holds a real OS-level lock (false on
// platforms where lockDir is advisory-lock-free).
func (l *dirLock) Locked() bool { return l != nil && l.f != nil }
