//go:build !unix

package journal

import "testing"

// TestLockDirStubIsClosableNotExclusive documents the non-flock platforms'
// contract: lockDir always succeeds, returns a non-nil closable handle that
// holds no OS-level lock, and provides no cross-process exclusion — two
// opens of the same directory both succeed. The build tag keeps this
// compiled (and `GOOS=windows go vet ./...` type-checked) exactly where the
// stub is the implementation.
func TestLockDirStubIsClosableNotExclusive(t *testing.T) {
	dir := t.TempDir()
	a, err := lockDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a == nil {
		t.Fatal("stub lockDir returned nil")
	}
	if a.Locked() {
		t.Fatal("stub handle claims an OS-level lock")
	}
	b, err := lockDir(dir)
	if err != nil {
		t.Fatalf("second open should succeed on lock-free platforms: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}
