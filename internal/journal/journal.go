// Package journal persists a steering session's broadcast stream as an
// append-only, length-prefixed, CRC-checked log of the exact pre-encoded
// wire envelopes the session fans out — the durability layer under the
// collaborative-steering model: late joiners replay the log to converge on
// a running session's accumulated history, and a restarted daemon rebuilds
// session state from it (core.Session.Recover).
//
// The log is a directory of fixed-size-bounded segment files. Every record
// is classed (state / event / sample) so a compaction pass can fold
// superseded state frames into a snapshot — the session's full parameter
// table and view, fetched through the Snapshot callback — while retaining
// the event tail and the freshest sample. Recovery truncates a torn tail on
// the active segment, skips the corrupt remainder of older segments, and
// discards everything before the latest compaction barrier.
//
// A Journal keeps an in-memory mirror of the replayable records, so Replay
// (the attach catch-up path) never touches disk. Record is memory-only and
// copy-free: it retains the broadcast's refcounted buffer (core.FrameBuf)
// once for the mirror and once for a pending batch. All disk I/O — framing
// the batch, writes, fsync, segment rotation, compaction — happens on the
// maintenance path under a separate I/O lock, so the broadcast hot path
// never waits behind the disk; batch references release only after the
// flush (and fsync) lands, mirror references when compaction drops the
// record. A Syncer (one per hub shard) sweeps the maintenance for every
// journal it watches; without one, Record runs the maintenance inline.
package journal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Record classes as stored on disk. The first three mirror core's
// JournalClass values bit-for-bit; the last two exist only inside the log.
const (
	recState  = byte(core.JournalState)
	recEvent  = byte(core.JournalEvent)
	recSample = byte(core.JournalSample)
	// recSnapshot is a full-state frame written by compaction; it replays
	// as JournalState.
	recSnapshot = 0x10
	// recReset is the compaction barrier: recovery discards every record
	// scanned before it — but only once the matching recCommit proves the
	// whole fold reached disk. A reset whose fold is torn (no commit) is
	// ignored, and the pre-fold history it would have superseded — still
	// on disk, deletion runs only after a durable fold — is served
	// instead.
	recReset = 0x11
	// recCommit seals a fold: written as the last record of the
	// compaction blob.
	recCommit = 0x12
)

// Options configure a Journal.
type Options struct {
	// Dir is the journal directory (one session per directory). Created if
	// missing.
	Dir string
	// SegmentBytes bounds one segment file before rotation; 0 selects
	// 1 MiB. A single maintenance sweep's batch (or a compaction fold)
	// always lands in one segment, so a burst may overgrow the bound by
	// one batch.
	SegmentBytes int
	// Fsync syncs the active segment on every maintenance flush (and on
	// Close). Off, durability is the OS's page cache.
	Fsync bool
	// CompactRecords triggers compaction when the replay mirror exceeds
	// this many records; 0 selects 4096. Compaction needs Snapshot.
	CompactRecords int
	// CompactBytes triggers compaction when the mirror exceeds this many
	// payload bytes; 0 selects 4 MiB.
	CompactBytes int
	// RetainEvents is how many trailing event frames survive compaction;
	// 0 selects 128.
	RetainEvents int
	// Snapshot returns the owning session's full state as wire envelopes
	// (core.Session.SnapshotFrames); compaction replaces superseded state
	// records with its result. Nil disables compaction. Settable later via
	// SetSnapshot (the session usually exists only after the journal).
	Snapshot func() [][]byte
}

func (o *Options) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.CompactRecords <= 0 {
		o.CompactRecords = 4096
	}
	if o.CompactBytes <= 0 {
		o.CompactBytes = 4 << 20
	}
	if o.RetainEvents <= 0 {
		o.RetainEvents = 128
	}
}

// record is one mirrored log entry. fb is non-nil while frame aliases a
// refcounted broadcast buffer the journal retained: the mirror holds one
// reference for as long as the record is replayable (released when
// compaction drops the record), and the pending fsync batch holds its own
// (released once the flush lands). Recovered and compaction-minted records
// own plain heap bytes and carry a nil fb.
type record struct {
	class byte
	frame []byte
	fb    *core.FrameBuf
}

// retain bumps the record's buffer reference, if it has one.
func (r *record) retain() {
	if r.fb != nil {
		r.fb.Retain()
	}
}

// release drops the record's buffer reference, if it has one.
func (r *record) release() {
	if r.fb != nil {
		r.fb.Release()
	}
}

// Stats counts journal activity.
type Stats struct {
	// Records and MirrorBytes size the replayable mirror (what a late
	// joiner's catch-up scans).
	Records     int
	MirrorBytes int
	// Segments is the number of live segment files.
	Segments int
	// Appends counts Record calls accepted since Open.
	Appends uint64
	// Compactions counts completed compaction passes.
	Compactions uint64
	// RecoveredRecords is how many records the opening scan yielded.
	RecoveredRecords int
	// SkippedSegments counts segments abandoned during recovery: a corrupt
	// header, or a mid-segment CRC mismatch (the remainder is skipped).
	SkippedSegments int
	// TruncatedBytes is how much torn tail recovery cut off the active
	// segment.
	TruncatedBytes int64
	// OversizedRecords counts frames too large to frame on disk
	// (maxRecordBytes); the mirror serves them live, a restart will not.
	OversizedRecords uint64
	// WriteErrs counts disk write/flush failures; the mirror stays
	// authoritative, so catch-up keeps working while disk state degrades.
	WriteErrs uint64
}

// Journal is a durable, compacting record of one session's broadcasts.
// It implements core.JournalSink. All methods are safe for concurrent use.
type Journal struct {
	opts Options

	// mu guards the memory state: the replay mirror, the pending disk
	// batch, and the counters. The broadcast hot path takes only this.
	mu       sync.Mutex
	recs     []record
	mirBytes int
	// tapped are records awaiting a maintenance write: Record no longer
	// copies frames into a byte batch on the hot path — it retains the
	// broadcast's refcounted buffer, and the maintenance sweep frames the
	// bytes on the disk path and releases each buffer only after the write
	// (and fsync, in durability mode) lands. A tapped buffer therefore
	// cannot return to the frame pool before its fsync batch flushes.
	tapped   []record
	snapshot func() [][]byte

	needsCompact bool
	closed       bool
	stats        Stats

	// lock holds the directory's cross-process advisory lock. Its Close is
	// nil-safe, so unlock paths need no platform- or state-dependent
	// branching.
	lock *dirLock

	// iomu guards the disk state; held across writes, fsync, rotation and
	// compaction rewrites — never while mu-holders need to proceed.
	iomu     sync.Mutex
	ioClosed bool // Close ran: no path may touch (or resurrect) disk state
	seg      *os.File
	segIndex uint64
	segSize  int64
	segments []uint64 // live segment indices, ascending
	// blobScratch is the maintenance path's reusable framing buffer
	// (guarded by iomu): a steady stream of appends costs no allocation on
	// the disk path either.
	blobScratch []byte

	writeErrs atomic.Uint64

	// notify hands maintenance duty to a Syncer; nil means Record runs it
	// inline. notified edge-triggers one wakeup per dirty period.
	notify   func(*Journal)
	notified atomic.Bool
}

// Open creates or recovers the journal in opts.Dir.
func Open(opts Options) (*Journal, error) {
	if opts.Dir == "" {
		return nil, errors.New("journal: Options.Dir required")
	}
	opts.fill()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	lock, err := lockDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	j := &Journal{opts: opts, snapshot: opts.Snapshot, lock: lock}
	if err := j.recoverDir(); err != nil {
		lock.Close()
		return nil, err
	}
	return j, nil
}

// SetSnapshot installs the full-state provider compaction folds superseded
// state records into (typically core.Session.SnapshotFrames of the session
// this journal records).
func (j *Journal) SetSnapshot(fn func() [][]byte) {
	j.mu.Lock()
	j.snapshot = fn
	j.mu.Unlock()
}

// Record implements core.JournalSink: it appends one broadcast frame. The
// mirror is updated synchronously — an attach racing this call replays a
// consistent prefix — but the hot path copies nothing: the refcounted
// broadcast buffer is retained once for the mirror and once for the
// pending disk batch, and the on-disk framing happens on the maintenance
// path. Without a Syncer the maintenance (write, fsync, compaction) runs
// inline before returning.
//
//steer:hotpath
//steer:owns
func (j *Journal) Record(class core.JournalClass, fb *core.FrameBuf) {
	switch class {
	case core.JournalState, core.JournalEvent, core.JournalSample:
	default:
		return
	}
	frame := fb.Bytes()
	j.mu.Lock() //steer:allow hotpathalloc journal tap mutex; held for slice appends only, disk I/O is under iomu on the maintenance path
	if j.closed {
		j.mu.Unlock()
		return
	}
	r := record{class: byte(class), frame: frame, fb: fb}
	r.retain() // mirror reference, dropped when compaction evicts the record
	j.recs = append(j.recs, r)
	j.mirBytes += len(frame)
	if 1+len(frame) > maxRecordBytes {
		j.stats.OversizedRecords++
	} else {
		r.retain() // batch reference, dropped after the flush (+fsync) lands
		j.tapped = append(j.tapped, r)
	}
	j.stats.Appends++
	if j.snapshot != nil && (len(j.recs) > j.opts.CompactRecords || j.mirBytes > j.opts.CompactBytes) {
		j.needsCompact = true
	}
	notify := j.notify
	j.mu.Unlock()
	if notify == nil {
		j.Maintain()
	} else if !j.notified.Swap(true) {
		notify(j)
	}
}

// Replay implements core.JournalSink: it visits the mirrored records oldest
// first until visit returns false. Compaction-written snapshot frames visit
// as JournalState. The visit runs without the journal lock; the replay
// retains every record's buffer first, so a compaction swapping the mirror
// mid-replay leaves this replay on its pre-compaction view with every
// frame still alive (per the sink contract, frames are only valid during
// the visit — callers copy what they keep).
func (j *Journal) Replay(visit func(class core.JournalClass, frame []byte) bool) {
	j.mu.Lock()
	recs := j.recs
	for i := range recs {
		recs[i].retain()
	}
	j.mu.Unlock()
	defer func() {
		for i := range recs {
			recs[i].release()
		}
	}()
	for _, r := range recs {
		class := r.class
		if class == recSnapshot {
			class = recState
		}
		if !visit(core.JournalClass(class), r.frame) {
			return
		}
	}
}

// Maintain frames and writes the pending batch (fsyncing per
// Options.Fsync), rotating a full segment first, and runs a pending
// compaction. Syncers call it once per sweep; it is also safe to call
// directly. Disk I/O happens under the I/O lock only — Record never waits
// on it — and the batch is stolen under BOTH locks, so concurrent
// Maintains cannot reorder batches on disk and a racing Close either
// steals the batch itself or waits out this write: nothing is silently
// dropped mid-handoff. The batch's buffer references are released only
// after the write (and fsync) lands: until then the broadcast buffers
// cannot return to the frame pool.
//
// Ref handoff: the stolen batch carries the references Record retained for
// it; flushTappedLocked releases them after the blob is durable.
//
//steer:coldpath
//steer:owns
func (j *Journal) Maintain() {
	j.notified.Store(false)
	j.iomu.Lock()
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		j.iomu.Unlock()
		return
	}
	tapped := j.tapped
	j.tapped = nil
	doCompact := j.needsCompact
	j.needsCompact = false
	j.mu.Unlock()
	if len(tapped) > 0 {
		j.flushTappedLocked(tapped)
	}
	j.iomu.Unlock()
	if doCompact {
		j.Compact()
	}
}

// flushTappedLocked frames a stolen batch into the scratch blob, writes it
// (fsyncing per Options.Fsync inside writeBlobLocked) and releases the
// batch references. Caller holds iomu.
//
//steer:owns
func (j *Journal) flushTappedLocked(tapped []record) {
	blob := j.blobScratch[:0]
	for i := range tapped {
		blob = appendRecord(blob, tapped[i].class, tapped[i].frame)
	}
	j.writeBlobLocked(blob)
	if cap(blob) <= maxBlobScratch {
		j.blobScratch = blob[:0]
	} else {
		j.blobScratch = nil // a burst must not pin its arena forever
	}
	for i := range tapped {
		tapped[i].release()
	}
}

// maxBlobScratch bounds the framing buffer capacity kept between sweeps.
const maxBlobScratch = 4 << 20

// Compact runs a compaction pass (a no-op without a snapshot provider):
// superseded state records collapse into the snapshot provider's
// full-state frames, trailing events and the freshest sample survive. The
// fold is persisted as a reset barrier plus the folded records at the head
// of a fresh segment, after which every older segment is deleted — a crash
// between the write and the deletes loses nothing, recovery discards
// pre-barrier records anyway.
//
// Ref handoff: the mirror references Record retained for evicted records
// are released here, once the folded segment is durable.
//
//steer:coldpath
//steer:owns
func (j *Journal) Compact() {
	j.iomu.Lock()
	defer j.iomu.Unlock()

	// Phase 1: snapshot the inputs. Only a slice header is taken under
	// the hot-path lock; the fold itself (session state encode, CRC
	// framing of up to CompactBytes of records) runs with iomu alone, so
	// an emit's Record never stalls behind it. Reading base's frames
	// without extra retains is safe: mirror references are only ever
	// dropped by compaction itself, which iomu serialises (Close seals the
	// journal but keeps the mirror alive for Replay).
	j.mu.Lock()
	if j.closed || j.snapshot == nil {
		j.mu.Unlock()
		return
	}
	snap := j.snapshot
	base := j.recs
	j.mu.Unlock()

	state := snap()
	var events []record
	var lastSample *record
	for i := range base {
		switch base[i].class {
		case recEvent:
			events = append(events, base[i])
		case recSample:
			lastSample = &base[i]
		}
	}
	if len(events) > j.opts.RetainEvents {
		events = events[len(events)-j.opts.RetainEvents:]
	}
	fresh := make([]record, 0, len(state)+len(events)+1)
	for _, f := range state {
		fresh = append(fresh, record{class: recSnapshot, frame: f})
	}
	fresh = append(fresh, events...)
	if lastSample != nil {
		fresh = append(fresh, *lastSample)
	}
	// Only compaction-minted snapshot frames are NEW oversize counts;
	// retained records were counted when first recorded.
	var oversized uint64
	blob := appendRecord(nil, recReset, nil)
	for _, r := range fresh {
		if 1+len(r.frame) > maxRecordBytes {
			if r.class == recSnapshot {
				oversized++
			}
			continue
		}
		blob = appendRecord(blob, r.class, r.frame)
	}

	// Phase 2: swap the fold in. Records that arrived during the fold are
	// the tail beyond the snapshotted prefix — they join the fresh mirror
	// and the blob (the tapped batch is stolen with the rest, since the
	// blob now carries its content past the reset barrier; no Maintain can
	// hold a stolen batch here, steals happen under iomu which we hold).
	// Refcounts move with the swap: every record kept in the fresh mirror
	// retains its buffer first, then every old mirror reference — and the
	// superseded tapped batch — releases, so a dropped record's buffer
	// returns to the frame pool and a kept one never dips to zero.
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return
	}
	for _, r := range j.recs[len(base):] {
		fresh = append(fresh, r)
		if 1+len(r.frame) > maxRecordBytes {
			continue // counted when recorded
		}
		blob = appendRecord(blob, r.class, r.frame)
	}
	for i := range fresh {
		fresh[i].retain()
	}
	old := j.recs
	tapped := j.tapped
	j.tapped = nil
	j.recs = fresh
	j.mirBytes = 0
	for _, r := range fresh {
		j.mirBytes += len(r.frame)
	}
	j.needsCompact = false
	j.stats.Compactions++
	j.stats.OversizedRecords += oversized
	j.mu.Unlock()
	for i := range old {
		old[i].release()
	}
	for i := range tapped {
		tapped[i].release()
	}

	// Phase 3: persist — reset barrier + fold + commit at the head of a
	// fresh segment, then drop every older segment. If the fold never
	// (fully) reached disk, the older segments are the only durable
	// history left: keep them — recovery ignores a commit-less reset and
	// reads their records, and the next compaction retries.
	blob = appendRecord(blob, recCommit, nil)
	if err := j.rotateLocked(); err != nil {
		j.writeErrs.Add(1)
		j.retryCompact()
		return
	}
	keep := j.segIndex
	errsBefore := j.writeErrs.Load()
	j.writeBlobLocked(blob)
	if j.writeErrs.Load() != errsBefore {
		j.retryCompact()
		return
	}
	live := j.segments[:0]
	for _, idx := range j.segments {
		if idx < keep {
			os.Remove(j.segPath(idx))
		} else {
			live = append(live, idx)
		}
	}
	j.segments = live
	if j.opts.Fsync {
		// The deletes are directory metadata; make them durable so a
		// crash cannot resurrect pre-fold segments after their fold.
		j.syncDir()
	}
}

// retryCompact re-arms compaction after a failed fold persist: the folded
// records live only in the mirror until a retry lands them on disk (the
// next maintenance after the next append; a crash before then loses the
// folded middle, which is the bounded cost of a sick disk).
func (j *Journal) retryCompact() {
	j.mu.Lock()
	if !j.closed {
		j.needsCompact = true
	}
	j.mu.Unlock()
}

// Close writes the pending batch and closes the active segment. Further
// Records are dropped; Replay keeps serving the mirror (whose buffer
// references the journal therefore keeps holding — a sealed journal's
// frames stay valid until the process, or the last replayer, lets go of
// the Journal itself). A failed final write also counts into
// Stats.WriteErrs, so callers that discard the error (a hub evicting a
// session) still leave an observable trace of the lost tail.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	tapped := j.tapped
	j.tapped = nil
	j.mu.Unlock()

	j.iomu.Lock()
	defer j.iomu.Unlock()
	errsBefore := j.writeErrs.Load()
	if len(tapped) > 0 {
		j.flushTappedLocked(tapped)
	}
	j.ioClosed = true
	if j.seg != nil {
		if j.opts.Fsync {
			if err := j.seg.Sync(); err != nil {
				j.writeErrs.Add(1)
			}
		}
		if err := j.seg.Close(); err != nil {
			j.writeErrs.Add(1)
		}
		j.seg = nil
	}
	j.lock.Close() // releases the directory's advisory lock; nil-safe
	if j.writeErrs.Load() != errsBefore {
		return errors.New("journal: close failed to persist the buffered tail")
	}
	return nil
}

// Stats returns a snapshot of the activity counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	st := j.stats
	st.Records = len(j.recs)
	st.MirrorBytes = j.mirBytes
	j.mu.Unlock()
	j.iomu.Lock()
	st.Segments = len(j.segments)
	j.iomu.Unlock()
	st.WriteErrs = j.writeErrs.Load()
	return st
}

// crcRecord checksums a record body (class byte + frame) without
// materialising it.
func crcRecord(class byte, frame []byte) uint32 {
	crc := crc32.ChecksumIEEE([]byte{class})
	return crc32.Update(crc, crc32.IEEETable, frame)
}
