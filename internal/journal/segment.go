package journal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// On-disk format. A segment file is a 16-byte header followed by records:
//
//	header:  magic "SCJL" (4B) | format version (4B BE) | reserved (8B)
//	record:  body length (4B BE) | CRC-32/IEEE of body (4B) | body
//	body:    class (1B) | frame bytes (the pre-encoded wire envelope)
//
// Records never span segments. A record that fails its length bound, CRC or
// is cut short marks the end of trustworthy data: on the newest segment the
// file is truncated there (a torn tail from a crash mid-append), on older
// segments the remainder is skipped (bit rot cannot fabricate a valid CRC,
// so everything before the damage is still served).
const (
	segMagic      = 0x53434A4C // "SCJL"
	segVersion    = 1
	segHeaderSize = 16
	recPrefixSize = 8
	// maxRecordBytes bounds one record body, both at write time (larger
	// frames stay mirror-only) and at recovery (a corrupt length cannot
	// drive a huge allocation).
	maxRecordBytes = 64 << 20
)

// segPath names segment i inside the journal directory.
func (j *Journal) segPath(i uint64) string {
	return filepath.Join(j.opts.Dir, fmt.Sprintf("journal-%08d.seg", i))
}

// appendRecord appends the on-disk framing of one record to dst.
func appendRecord(dst []byte, class byte, frame []byte) []byte {
	var pre [recPrefixSize]byte
	binary.BigEndian.PutUint32(pre[0:4], uint32(1+len(frame)))
	binary.BigEndian.PutUint32(pre[4:8], crcRecord(class, frame))
	dst = append(dst, pre[:]...)
	dst = append(dst, class)
	return append(dst, frame...)
}

// rotateLocked seals the active segment and opens the next one. Seal
// failures count like every other write failure — the sealed tail may be
// lost on disk while the mirror keeps serving it. Caller holds iomu.
func (j *Journal) rotateLocked() error {
	if j.seg != nil {
		if j.opts.Fsync {
			if err := j.seg.Sync(); err != nil {
				j.writeErrs.Add(1)
			}
		}
		j.seg.Close()
		j.seg = nil
	}
	next := j.segIndex + 1
	f, err := os.OpenFile(j.segPath(next), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], segMagic)
	binary.BigEndian.PutUint32(hdr[4:8], segVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	j.seg = f
	j.segIndex = next
	j.segSize = segHeaderSize
	j.segments = append(j.segments, next)
	if j.opts.Fsync {
		// fsync(file) alone does not persist the new directory entry on
		// every filesystem; durability mode pays for the dir sync too.
		j.syncDir()
	}
	return nil
}

// syncDir makes directory-entry changes (segment creates and deletes)
// durable. Only called in Fsync mode.
func (j *Journal) syncDir() {
	d, err := os.Open(j.opts.Dir)
	if err != nil {
		j.writeErrs.Add(1)
		return
	}
	if err := d.Sync(); err != nil {
		j.writeErrs.Add(1)
	}
	d.Close()
}

// writeBlobLocked writes one batch of framed records to the active
// segment, rotating first when it is full (a batch always lands whole in
// one segment — records never span). Caller holds iomu.
func (j *Journal) writeBlobLocked(blob []byte) {
	if j.ioClosed {
		// A sweep that grabbed its batch just before Close must not write
		// — let alone rotate a fresh segment file into — a directory whose
		// lock Close already released.
		return
	}
	if j.seg == nil || j.segSize >= int64(j.opts.SegmentBytes) {
		if err := j.rotateLocked(); err != nil {
			j.writeErrs.Add(1)
			return
		}
	}
	if _, err := j.seg.Write(blob); err != nil {
		j.writeErrs.Add(1)
		return
	}
	j.segSize += int64(len(blob))
	if j.opts.Fsync {
		if err := j.seg.Sync(); err != nil {
			j.writeErrs.Add(1)
		}
	}
}

// scanResult is one segment's recovery verdict.
type scanResult struct {
	headerOK bool
	records  []record
	// goodSize is the offset just past the last valid record.
	goodSize int64
	// damaged reports invalid data after goodSize (torn tail or bit rot).
	damaged bool
	// openReset is the offset of a trailing reset barrier whose commit
	// never appeared — a torn compaction fold; -1 when none. On the
	// appendable segment the file must be cut back to it, or frames
	// appended after the orphan barrier would be discarded as fold debris
	// by the next recovery.
	openReset int64
}

// scanSegment reads every CRC-valid record from the start of a segment.
func scanSegment(path string) (scanResult, error) {
	res := scanResult{openReset: -1}
	f, err := os.Open(path)
	if err != nil {
		return res, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)

	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		res.damaged = true
		return res, nil
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != segMagic || binary.BigEndian.Uint32(hdr[4:8]) != segVersion {
		res.damaged = true
		return res, nil
	}
	res.headerOK = true
	res.goodSize = segHeaderSize

	for {
		var pre [recPrefixSize]byte
		if _, err := io.ReadFull(br, pre[:]); err != nil {
			if err != io.EOF {
				res.damaged = true
			}
			return res, nil
		}
		n := binary.BigEndian.Uint32(pre[0:4])
		crc := binary.BigEndian.Uint32(pre[4:8])
		if n < 1 || n > maxRecordBytes {
			res.damaged = true
			return res, nil
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			res.damaged = true
			return res, nil
		}
		if crc32.ChecksumIEEE(body) != crc {
			res.damaged = true
			return res, nil
		}
		switch body[0] {
		case recReset:
			res.openReset = res.goodSize
		case recCommit:
			res.openReset = -1
		}
		res.records = append(res.records, record{class: body[0], frame: body[1:]})
		res.goodSize += int64(recPrefixSize) + int64(n)
	}
}

// recoverDir scans the journal directory, rebuilds the mirror and prepares
// the active segment for appending. Runs single-threaded from Open.
func (j *Journal) recoverDir() error {
	entries, err := os.ReadDir(j.opts.Dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	var indices []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "journal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		idx, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "journal-"), ".seg"), 10, 64)
		if err != nil {
			continue
		}
		indices = append(indices, idx)
	}
	sort.Slice(indices, func(a, b int) bool { return indices[a] < indices[b] })

	appendable := false // last segment healthy enough to keep appending to
	for k, idx := range indices {
		last := k == len(indices)-1
		res, err := scanSegment(j.segPath(idx))
		if err != nil {
			return fmt.Errorf("journal: recover segment %d: %w", idx, err)
		}
		// Every found file stays in the live list so a later compaction
		// deletes it, trustworthy or not.
		j.segments = append(j.segments, idx)
		if !res.headerOK {
			// Unreadable header: nothing in this segment is trustworthy.
			j.stats.SkippedSegments++
			continue
		}
		// A compaction fold is one blob inside one segment: reset barrier,
		// fold records, commit. The barrier supersedes everything scanned
		// so far only when its commit proves the fold is whole; a torn
		// fold (reset, no commit) is discarded and the pre-fold history
		// stands.
		var foldBuf []record
		inFold := false
		for _, r := range res.records {
			switch r.class {
			case recReset:
				inFold = true
				foldBuf = foldBuf[:0]
			case recCommit:
				if inFold {
					j.recs = foldBuf
					foldBuf = nil
					inFold = false
				}
			default:
				if inFold {
					foldBuf = append(foldBuf, r)
				} else {
					j.recs = append(j.recs, r)
				}
			}
		}
		j.stats.RecoveredRecords += len(res.records)
		if res.damaged && !last {
			// Mid-log corruption: the rest of this segment is lost,
			// later segments are still valid.
			j.stats.SkippedSegments++
			continue
		}
		if last {
			// The newest segment is about to take appends; cut away
			// anything appends must not follow: a torn tail from a crash
			// mid-append (goodSize), or an orphan reset barrier from a
			// torn compaction fold — new frames written after it would be
			// discarded as commit-less fold debris by the next recovery.
			cut := int64(-1)
			if res.damaged {
				cut = res.goodSize
			}
			if res.openReset >= 0 {
				cut = res.openReset
			}
			if cut >= 0 {
				if fi, err := os.Stat(j.segPath(idx)); err == nil {
					j.stats.TruncatedBytes += fi.Size() - cut
				}
				if err := os.Truncate(j.segPath(idx), cut); err != nil {
					return fmt.Errorf("journal: truncate torn tail: %w", err)
				}
				res.goodSize = cut
			}
			j.segIndex = idx
			j.segSize = res.goodSize
			appendable = true
		}
	}
	if len(indices) > 0 && j.segIndex < indices[len(indices)-1] {
		// The newest segment was skipped whole; never reuse its index.
		j.segIndex = indices[len(indices)-1]
	}
	for _, r := range j.recs {
		j.mirBytes += len(r.frame)
	}

	if appendable && j.segSize < int64(j.opts.SegmentBytes) {
		f, err := os.OpenFile(j.segPath(j.segIndex), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("journal: reopen active segment: %w", err)
		}
		j.seg = f
		return nil
	}
	return j.rotateLocked()
}
