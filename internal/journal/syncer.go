package journal

import (
	"sync"
	"time"
)

// Syncer batches journal maintenance — flush, fsync, compaction — across
// every journal it watches, on one goroutine. This is the hub's per-shard
// journal writer: a session's Record only touches the in-memory mirror and
// a write buffer, and the syncer turns bursts of appends from every session
// on the shard into one flush (and at most one fsync per journal) per
// sweep, bounded by Interval of added latency.
type Syncer struct {
	interval time.Duration

	mu    sync.Mutex
	dirty map[*Journal]struct{}

	kick      chan struct{}
	closeCh   chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewSyncer starts a syncer whose sweeps dwell interval after the first
// dirty signal so a burst lands in one flush; 0 selects 2ms.
func NewSyncer(interval time.Duration) *Syncer {
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	sy := &Syncer{
		interval: interval,
		dirty:    make(map[*Journal]struct{}),
		kick:     make(chan struct{}, 1),
		closeCh:  make(chan struct{}),
	}
	sy.wg.Add(1)
	go sy.run()
	return sy
}

// Watch takes over j's flush/compact duty: j.Record stops flushing inline
// and signals this syncer instead.
func (sy *Syncer) Watch(j *Journal) {
	j.mu.Lock()
	j.notify = sy.schedule
	j.mu.Unlock()
}

// schedule marks a journal dirty; called at most once per dirty period via
// the journal's edge trigger, so append throughput never serialises here.
func (sy *Syncer) schedule(j *Journal) {
	sy.mu.Lock()
	sy.dirty[j] = struct{}{}
	sy.mu.Unlock()
	select {
	case sy.kick <- struct{}{}:
	default:
	}
}

func (sy *Syncer) run() {
	defer sy.wg.Done()
	for {
		select {
		case <-sy.kick:
			// Dwell so the appends behind this kick — and any racing in
			// from other sessions on the shard — batch into one sweep.
			select {
			case <-time.After(sy.interval):
			case <-sy.closeCh:
			}
			sy.sweep()
		case <-sy.closeCh:
			sy.sweep()
			return
		}
	}
}

// sweep maintains every journal marked dirty since the last sweep.
func (sy *Syncer) sweep() {
	sy.mu.Lock()
	batch := sy.dirty
	sy.dirty = make(map[*Journal]struct{})
	sy.mu.Unlock()
	for j := range batch {
		j.Maintain()
	}
}

// Close performs a final sweep and stops the syncer. Journals it watched
// stay write-buffered until closed — Journal.Close always persists the
// remaining batch.
func (sy *Syncer) Close() {
	sy.closeOnce.Do(func() { close(sy.closeCh) })
	sy.wg.Wait()
}
