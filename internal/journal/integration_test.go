package journal

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// testCtx bounds one steering round trip so a wedged session fails the
// test instead of hanging it.
func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// serveSession wires a session to a loopback listener and returns a dialer.
func serveSession(t *testing.T, s *core.Session) func(opts core.AttachOptions) *core.Client {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	return func(opts core.AttachOptions) *core.Client {
		t.Helper()
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c, err := core.Attach(conn, opts)
		if err != nil {
			t.Fatalf("attach: %v", err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestLateJoinerCatchupOnDisk runs the acceptance scenario against the real
// segmented journal, then restarts the world: a fresh session over the same
// directory recovers state and still serves the history to late joiners.
func TestLateJoinerCatchupOnDisk(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewSession(core.SessionConfig{Name: "run", Journal: j})
	j.SetSnapshot(s.SnapshotFrames)
	dial := serveSession(t, s)
	st := s.Steered()
	if err := st.RegisterFloat("g", 0, 0, 10, "", func(float64) {}); err != nil {
		t.Fatal(err)
	}

	early := dial(core.AttachOptions{Name: "early"})
	if err := early.SetParamContext(testCtx(t), "g", 4.5); err != nil {
		t.Fatal(err)
	}
	st.Poll()
	for i := 0; i < 8; i++ {
		st.Event(fmt.Sprintf("residual 1e-%d", i))
	}
	sample := core.NewSample(7)
	sample.Channels["seg"] = core.Scalar(0.7)
	st.Emit(sample)
	waitFor(t, "early history", func() bool { return len(early.Events()) == 8 })

	late := dial(core.AttachOptions{Name: "late"})
	waitFor(t, "late joiner convergence", func() bool {
		return reflect.DeepEqual(late.Events(), early.Events())
	})
	if p, _ := late.Param("g"); p.Value != core.FloatValue(4.5) {
		t.Fatalf("late joiner param: %+v", p)
	}
	select {
	case got := <-late.Samples():
		if got.Step != 7 {
			t.Fatalf("replayed sample step = %d", got.Step)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sample history not replayed")
	}

	wantEvents := early.Events()
	s.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: same directory, fresh session and journal.
	j2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s2 := core.NewSession(core.SessionConfig{Name: "run", Journal: j2})
	defer s2.Close()
	j2.SetSnapshot(s2.SnapshotFrames)
	st2 := s2.Steered()
	var revived float64
	if err := st2.RegisterFloat("g", 0, 0, 10, "", func(v float64) { revived = v }); err != nil {
		t.Fatal(err)
	}
	if n, err := s2.Recover(); err != nil || n == 0 {
		t.Fatalf("Recover: n=%d err=%v", n, err)
	}
	if revived != 4.5 {
		t.Fatalf("revived coupling = %v, want 4.5", revived)
	}
	if ls := s2.LastSample(); ls == nil || ls.Step != 7 {
		t.Fatalf("revived last sample: %+v", ls)
	}

	dial2 := serveSession(t, s2)
	reborn := dial2(core.AttachOptions{Name: "reborn"})
	waitFor(t, "post-restart late joiner", func() bool {
		return reflect.DeepEqual(reborn.Events(), wantEvents)
	})
	if p, _ := reborn.Param("g"); p.Value != core.FloatValue(4.5) {
		t.Fatalf("post-restart param: %+v", p)
	}
}

// TestAttachDuringCompaction exercises the attach barrier against a
// compacting journal under -race: clients keep attaching while events
// stream and the mirror is repeatedly folded. Every client must converge
// on a duplicate-free suffix of the event history.
func TestAttachDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{
		Dir:            dir,
		SegmentBytes:   2048,
		CompactRecords: 24,
		RetainEvents:   16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	s := core.NewSession(core.SessionConfig{Name: "churn", Journal: j})
	defer s.Close()
	j.SetSnapshot(s.SnapshotFrames)
	sy := NewSyncer(time.Millisecond)
	defer sy.Close()
	sy.Watch(j)
	dial := serveSession(t, s)
	st := s.Steered()

	const total = 400
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			st.Event(fmt.Sprintf("ev-%04d", i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			j.Compact()
			time.Sleep(time.Millisecond)
		}
	}()
	var clients []*core.Client
	for i := 0; i < 8; i++ {
		clients = append(clients, dial(core.AttachOptions{Name: fmt.Sprintf("c%d", i)}))
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()

	last := fmt.Sprintf("ev-%04d", total-1)
	for i, c := range clients {
		c := c
		waitFor(t, fmt.Sprintf("client %d tail", i), func() bool {
			evs := c.Events()
			return len(evs) > 0 && evs[len(evs)-1] == last
		})
		// The history each client saw must be strictly increasing (no
		// duplicates, no reordering) — compaction may trim its head, the
		// barrier guarantees nothing is seen twice.
		evs := c.Events()
		for k := 1; k < len(evs); k++ {
			if evs[k] <= evs[k-1] {
				t.Fatalf("client %d saw %q after %q", i, evs[k], evs[k-1])
			}
		}
	}
	if j.Stats().Compactions == 0 {
		t.Fatal("compaction never ran during the test")
	}
}
