package journal

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

// BenchmarkJournalAppend measures the broadcast-path cost of durability:
// one Record of a pre-encoded 256-byte envelope. "inline" flushes per
// append (standalone journal), "syncer" is the hub configuration where the
// hot path only touches the mirror and a write buffer and a per-shard
// syncer batches flush+fsync.
func BenchmarkJournalAppend(b *testing.B) {
	frame := make([]byte, 256)
	for i := range frame {
		frame[i] = byte(i)
	}
	for _, mode := range []string{"inline", "syncer"} {
		b.Run(mode, func(b *testing.B) {
			j, err := Open(Options{Dir: b.TempDir(), SegmentBytes: 8 << 20})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			if mode == "syncer" {
				sy := NewSyncer(time.Millisecond)
				defer sy.Close()
				sy.Watch(j)
			}
			fb := core.NewFrame(frame)
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j.Record(core.JournalEvent, fb)
			}
		})
	}
}

// BenchmarkCatchupReplay measures what one late joiner costs the session: a
// full mirror replay of an event/sample history (the compaction-bounded
// catch-up a client attaching mid-run receives).
func BenchmarkCatchupReplay(b *testing.B) {
	for _, records := range []int{128, 1024} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			j, err := Open(Options{Dir: b.TempDir(), SegmentBytes: 8 << 20})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			fb := core.NewFrame(make([]byte, 256))
			for i := 0; i < records; i++ {
				class := core.JournalEvent
				if i%8 == 0 {
					class = core.JournalSample
				}
				j.Record(class, fb)
			}
			var bytes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				j.Replay(func(class core.JournalClass, f []byte) bool {
					if class == core.JournalEvent || class == core.JournalSample {
						n++
						bytes += int64(len(f))
					}
					return true
				})
				if n != records {
					b.Fatalf("replayed %d records, want %d", n, records)
				}
			}
			b.ReportMetric(float64(records), "frames/op")
		})
	}
}
