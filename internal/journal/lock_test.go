package journal

import "testing"

// TestDirLockCloseNilSafety pins the contract every unlock path relies on:
// Close never panics on a nil receiver, a lock-free handle, or a second
// call. This is the platform-neutral half of the lock_other regression — on
// non-flock platforms lockDir hands out exactly such file-less handles.
func TestDirLockCloseNilSafety(t *testing.T) {
	var nilLock *dirLock
	if err := nilLock.Close(); err != nil {
		t.Fatalf("nil receiver Close: %v", err)
	}
	if nilLock.Locked() {
		t.Fatal("nil receiver reports Locked")
	}

	stub := &dirLock{}
	if stub.Locked() {
		t.Fatal("file-less handle reports Locked")
	}
	if err := stub.Close(); err != nil {
		t.Fatalf("file-less Close: %v", err)
	}
	if err := stub.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestDirLockDoubleClose proves a real (or stub) lockDir handle survives
// the double-unlock an Open error path followed by a Close could produce.
func TestDirLockDoubleClose(t *testing.T) {
	l, err := lockDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if l == nil {
		t.Fatal("lockDir returned nil handle: callers would need nil branches again")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if l.Locked() {
		t.Fatal("closed handle reports Locked")
	}
}
