package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// frameOf builds a distinguishable fake envelope payload.
func frameOf(class core.JournalClass, i int) []byte {
	return []byte(fmt.Sprintf("%d:frame-%04d", class, i))
}

// rec drives Record the way a session broadcast does: a refcounted frame
// handed over for the duration of the call, the caller's own reference
// released after.
func rec(j *Journal, class core.JournalClass, frame []byte) {
	fb := core.NewFrame(frame)
	j.Record(class, fb)
	fb.Release()
}

// replayAll drains a journal's replay into (class, frame) pairs.
func replayAll(j *Journal) (classes []core.JournalClass, frames [][]byte) {
	j.Replay(func(class core.JournalClass, frame []byte) bool {
		classes = append(classes, class)
		frames = append(frames, frame)
		return true
	})
	return
}

// segFiles lists the journal's segment files (the lock file and anything
// else excluded), sorted.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

func TestAppendReplayReopen(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 25; i++ {
		class := core.JournalState
		switch i % 3 {
		case 1:
			class = core.JournalEvent
		case 2:
			class = core.JournalSample
		}
		f := frameOf(class, i)
		rec(j, class, f)
		want = append(want, f)
	}
	_, got := replayAll(j)
	if len(got) != len(want) {
		t.Fatalf("live replay: %d records, want %d", len(got), len(want))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	classes, got := replayAll(j2)
	if len(got) != len(want) {
		t.Fatalf("recovered replay: %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
	if classes[1] != core.JournalEvent || classes[2] != core.JournalSample {
		t.Fatalf("classes not preserved: %v", classes[:3])
	}
	if st := j2.Stats(); st.RecoveredRecords != len(want) || st.SkippedSegments != 0 || st.TruncatedBytes != 0 {
		t.Fatalf("recovery stats: %+v", st)
	}
}

func TestOpenRefusesConcurrentHandle(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("no flock on this platform")
	}
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if second, err := Open(Options{Dir: dir}); err == nil {
		second.Close()
		t.Fatal("second handle on a live journal dir accepted")
	}
	j.Close()
	j2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	j2.Close()
}

func TestSegmentRotationPreservesOrder(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		rec(j, core.JournalEvent, frameOf(core.JournalEvent, i))
	}
	j.Close()
	if files := segFiles(t, dir); len(files) < 3 {
		t.Fatalf("expected rotation into >=3 segments, got %v", files)
	}

	j2, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	_, frames := replayAll(j2)
	if len(frames) != n {
		t.Fatalf("recovered %d records, want %d", len(frames), n)
	}
	for i, f := range frames {
		if want := frameOf(core.JournalEvent, i); !bytes.Equal(f, want) {
			t.Fatalf("record %d out of order: %q", i, f)
		}
	}
}

func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rec(j, core.JournalEvent, frameOf(core.JournalEvent, i))
	}
	j.Close()

	// Simulate a crash mid-append: a record prefix with no body.
	files := segFiles(t, dir)
	active := filepath.Join(dir, files[len(files)-1])
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0, 0, 0, 40, 0xde, 0xad, 0xbe, 0xef, recEvent, 'x'}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(active)

	j2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, frames := replayAll(j2)
	if len(frames) != 10 {
		t.Fatalf("recovered %d records, want 10", len(frames))
	}
	st := j2.Stats()
	if st.TruncatedBytes != int64(len(torn)) {
		t.Fatalf("TruncatedBytes = %d, want %d", st.TruncatedBytes, len(torn))
	}
	after, _ := os.Stat(active)
	if after.Size() != before.Size()-int64(len(torn)) {
		t.Fatalf("tail not truncated: %d -> %d", before.Size(), after.Size())
	}

	// Appends resume cleanly on the truncated segment.
	rec(j2, core.JournalEvent, frameOf(core.JournalEvent, 10))
	j2.Close()
	j3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if _, frames := replayAll(j3); len(frames) != 11 {
		t.Fatalf("post-truncation append lost: %d records", len(frames))
	}
}

func TestTornTailMidRecord(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(Options{Dir: dir})
	for i := 0; i < 5; i++ {
		rec(j, core.JournalEvent, frameOf(core.JournalEvent, i))
	}
	j.Close()

	files := segFiles(t, dir)
	active := filepath.Join(dir, files[len(files)-1])
	fi, _ := os.Stat(active)
	if err := os.Truncate(active, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	_, frames := replayAll(j2)
	if len(frames) != 4 {
		t.Fatalf("recovered %d records, want 4 (last was torn)", len(frames))
	}
	if j2.Stats().TruncatedBytes == 0 {
		t.Fatal("no truncation recorded")
	}
}

func TestCRCMismatchSkipsSegmentRemainder(t *testing.T) {
	dir := t.TempDir()
	// ~4 records per segment.
	j, _ := Open(Options{Dir: dir, SegmentBytes: 96})
	const n = 16
	for i := 0; i < n; i++ {
		rec(j, core.JournalEvent, frameOf(core.JournalEvent, i))
	}
	j.Close()
	files := segFiles(t, dir)
	if len(files) < 3 {
		t.Fatalf("need >=3 segments, got %v", files)
	}

	// Flip one payload byte in the SECOND record of the second segment:
	// the first record survives, the remainder of that segment is skipped,
	// later segments are unaffected.
	victim := filepath.Join(dir, files[1])
	buf, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	first := int64(segHeaderSize) + recPrefixSize + 1 + int64(len(frameOf(core.JournalEvent, 0)))
	buf[first+recPrefixSize+3] ^= 0xff
	if err := os.WriteFile(victim, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(Options{Dir: dir, SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	_, frames := replayAll(j2)
	if len(frames) >= n || len(frames) == 0 {
		t.Fatalf("recovered %d records, want a strict, non-empty subset of %d", len(frames), n)
	}
	if j2.Stats().SkippedSegments != 1 {
		t.Fatalf("SkippedSegments = %d, want 1", j2.Stats().SkippedSegments)
	}
	// The surviving stream must be a subsequence with an intact prefix and
	// intact tail segments: first record overall, and the last record.
	if !bytes.Equal(frames[0], frameOf(core.JournalEvent, 0)) {
		t.Fatalf("first record damaged: %q", frames[0])
	}
	if !bytes.Equal(frames[len(frames)-1], frameOf(core.JournalEvent, n-1)) {
		t.Fatalf("last record lost: %q", frames[len(frames)-1])
	}
}

func TestBadHeaderSkipsWholeSegment(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(Options{Dir: dir, SegmentBytes: 96})
	const n = 16
	for i := 0; i < n; i++ {
		rec(j, core.JournalEvent, frameOf(core.JournalEvent, i))
	}
	j.Close()
	files := segFiles(t, dir)
	victim := filepath.Join(dir, files[1])
	buf, _ := os.ReadFile(victim)
	copy(buf[0:4], []byte("XXXX"))
	os.WriteFile(victim, buf, 0o644)

	j2, err := Open(Options{Dir: dir, SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	_, frames := replayAll(j2)
	if len(frames) >= n {
		t.Fatalf("corrupt segment not skipped: %d records", len(frames))
	}
	if j2.Stats().SkippedSegments != 1 {
		t.Fatalf("SkippedSegments = %d, want 1", j2.Stats().SkippedSegments)
	}
}

func TestCompactionFoldsStateRetainsTail(t *testing.T) {
	dir := t.TempDir()
	snapshot := [][]byte{[]byte("full-state-A"), []byte("full-state-B")}
	j, err := Open(Options{
		Dir:            dir,
		SegmentBytes:   256,
		CompactRecords: 1 << 20, // manual compaction only
		RetainEvents:   4,
		Snapshot:       func() [][]byte { return snapshot },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		rec(j, core.JournalState, frameOf(core.JournalState, i))
		rec(j, core.JournalEvent, frameOf(core.JournalEvent, i))
		rec(j, core.JournalSample, frameOf(core.JournalSample, i))
	}
	filesBefore := segFiles(t, dir)
	j.Compact()

	check := func(j *Journal, when string) {
		classes, frames := replayAll(j)
		// 2 snapshot state frames + 4 retained events + freshest sample.
		if len(frames) != 7 {
			t.Fatalf("%s: %d records after compaction, want 7: %q", when, len(frames), frames)
		}
		if classes[0] != core.JournalState || !bytes.Equal(frames[0], snapshot[0]) || !bytes.Equal(frames[1], snapshot[1]) {
			t.Fatalf("%s: snapshot not folded in: %q", when, frames[:2])
		}
		for i := 0; i < 4; i++ {
			if want := frameOf(core.JournalEvent, 26+i); !bytes.Equal(frames[2+i], want) {
				t.Fatalf("%s: event tail wrong at %d: %q want %q", when, i, frames[2+i], want)
			}
		}
		if classes[6] != core.JournalSample || !bytes.Equal(frames[6], frameOf(core.JournalSample, 29)) {
			t.Fatalf("%s: freshest sample not retained: %q", when, frames[6])
		}
	}
	check(j, "live")
	if st := j.Stats(); st.Compactions != 1 || st.Segments != 1 {
		t.Fatalf("stats after compaction: %+v", st)
	}
	filesAfter := segFiles(t, dir)
	if len(filesAfter) != 1 || len(filesBefore) < 2 {
		t.Fatalf("segments not pruned: %v -> %v", filesBefore, filesAfter)
	}

	// Post-compaction appends land after the fold, and recovery honours
	// the reset barrier.
	rec(j, core.JournalEvent, []byte("post-compact"))
	j.Close()
	j2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	_, frames := replayAll(j2)
	if len(frames) != 8 || !bytes.Equal(frames[7], []byte("post-compact")) {
		t.Fatalf("recovered post-compaction log: %q", frames)
	}
}

// TestCompactionFoldLargerThanSegment forces the fold itself to rotate
// mid-write: every segment the fold spans must stay tracked (no leaked
// files, Stats.Segments true) and the folded replay must survive further
// compactions.
func TestCompactionFoldLargerThanSegment(t *testing.T) {
	dir := t.TempDir()
	big := make([]byte, 300)
	j, err := Open(Options{
		Dir:            dir,
		SegmentBytes:   128,
		CompactRecords: 1 << 20,
		RetainEvents:   2,
		Snapshot:       func() [][]byte { return [][]byte{big, big, big} },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		rec(j, core.JournalEvent, frameOf(core.JournalEvent, i))
	}
	for round := 0; round < 2; round++ {
		j.Compact()
		files := segFiles(t, dir)
		if st := j.Stats(); st.Segments != len(files) {
			t.Fatalf("round %d: Stats.Segments = %d but %d files on disk: %v",
				round, st.Segments, len(files), files)
		}
	}
	// Two compactions must not leak first-fold segments: everything on
	// disk now belongs to the second fold (3 snapshot frames + 2 events,
	// each rotating since they exceed SegmentBytes).
	if files := segFiles(t, dir); len(files) > 6 {
		t.Fatalf("segments leaked across compactions: %v", files)
	}
	_, frames := replayAll(j)
	if len(frames) != 5 {
		t.Fatalf("folded replay has %d records, want 3 snapshot + 2 events", len(frames))
	}
	j.Close()
}

// TestUncommittedFoldKeepsPreFoldHistory: a compaction fold that reached
// disk only partially (reset barrier present, commit missing — a crash
// mid-fold) must not supersede the intact pre-fold segments.
func TestUncommittedFoldKeepsPreFoldHistory(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		rec(j, core.JournalEvent, frameOf(core.JournalEvent, i))
	}
	j.Close()

	// Hand-craft the crash artifact: a fresh segment holding a reset and
	// one fold record, torn before the commit.
	var seg []byte
	var hdr [segHeaderSize]byte
	seg = append(seg, hdr[:]...)
	copy(seg[0:4], []byte{0x53, 0x43, 0x4A, 0x4C}) // "SCJL"
	seg[7] = segVersion
	seg = appendRecord(seg, recReset, nil)
	seg = appendRecord(seg, recSnapshot, []byte("partial-fold-state"))
	if err := os.WriteFile(filepath.Join(dir, "journal-00000099.seg"), seg, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, frames := replayAll(j2)
	if len(frames) != 6 {
		t.Fatalf("recovered %d records, want the 6 pre-fold events", len(frames))
	}
	for i, f := range frames {
		if want := frameOf(core.JournalEvent, i); !bytes.Equal(f, want) {
			t.Fatalf("record %d: %q want %q (torn fold leaked in?)", i, f, want)
		}
	}
	if j2.Stats().TruncatedBytes == 0 {
		t.Fatal("orphan reset barrier not truncated away")
	}
	// Appends after the recovery must not land behind the orphan barrier:
	// a further restart has to keep serving them.
	rec(j2, core.JournalEvent, frameOf(core.JournalEvent, 6))
	j2.Close()
	j3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if _, frames := replayAll(j3); len(frames) != 7 {
		t.Fatalf("post-recovery append lost behind orphan barrier: %d records", len(frames))
	}
}

func TestAutoCompactionTriggers(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{
		Dir:            dir,
		CompactRecords: 8,
		RetainEvents:   2,
		Snapshot:       func() [][]byte { return [][]byte{[]byte("S")} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 100; i++ {
		rec(j, core.JournalEvent, frameOf(core.JournalEvent, i))
	}
	st := j.Stats()
	if st.Compactions == 0 {
		t.Fatal("auto compaction never ran")
	}
	if st.Records > 8+1 {
		t.Fatalf("mirror not bounded: %d records", st.Records)
	}
}

func TestReplayDeterminism(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(Options{
		Dir:          dir,
		SegmentBytes: 128,
		RetainEvents: 8,
		Snapshot:     func() [][]byte { return [][]byte{[]byte("snapshot-state")} },
	})
	for i := 0; i < 40; i++ {
		rec(j, core.JournalEvent, frameOf(core.JournalEvent, i))
		if i%5 == 0 {
			rec(j, core.JournalSample, frameOf(core.JournalSample, i))
		}
		if i == 20 {
			j.Compact()
		}
	}
	// The catch-up stream is what a late joiner receives: events and
	// samples, in replay order.
	catchup := func(j *Journal) []byte {
		var buf bytes.Buffer
		j.Replay(func(class core.JournalClass, frame []byte) bool {
			if class == core.JournalEvent || class == core.JournalSample {
				fmt.Fprintf(&buf, "%d|%s\n", class, frame)
			}
			return true
		})
		return buf.Bytes()
	}
	live := catchup(j)
	j.Close()

	for round := 0; round < 2; round++ {
		jr, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		got := catchup(jr)
		jr.Close()
		if !bytes.Equal(got, live) {
			t.Fatalf("round %d: catch-up stream diverged from live journal\nlive:\n%s\ngot:\n%s", round, live, got)
		}
	}
}

func TestSyncerFlushesWithoutClose(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sy := NewSyncer(time.Millisecond)
	defer sy.Close()
	sy.Watch(j)

	rec(j, core.JournalEvent, []byte("flushed-by-syncer"))
	deadline := time.Now().Add(2 * time.Second)
	for {
		files := segFiles(t, dir)
		fi, err := os.Stat(filepath.Join(dir, files[len(files)-1]))
		if err == nil && fi.Size() > segHeaderSize {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("syncer never flushed the append")
		}
		time.Sleep(time.Millisecond)
	}
	// The flushed bytes must be recoverable by an independent scan even
	// though the journal is still open.
	res, err := scanSegment(filepath.Join(dir, segFiles(t, dir)[0]))
	if err != nil || len(res.records) != 1 {
		t.Fatalf("scan of syncer-flushed segment: %v, %d records", err, len(res.records))
	}
	j.Close()
}

func TestConcurrentRecordReplayCompact(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{
		Dir:            dir,
		SegmentBytes:   512,
		CompactRecords: 32,
		RetainEvents:   8,
		Snapshot:       func() [][]byte { return [][]byte{[]byte("S")} },
	})
	if err != nil {
		t.Fatal(err)
	}
	sy := NewSyncer(time.Millisecond)
	sy.Watch(j)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rec(j, core.JournalEvent, frameOf(core.JournalEvent, i))
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := 0
			j.Replay(func(core.JournalClass, []byte) bool { n++; return n < 1000 })
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			j.Compact()
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	sy.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("journal unrecoverable after churn: %v", err)
	}
	j2.Close()
}
