//go:build unix

package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory lock on the journal directory so two
// processes can never write (and recovery-truncate) the same log: the
// in-process races are guarded by the hub's name reservation, this guards
// an operator starting a second daemon on the same -journal-dir. The lock
// lives with the returned handle and releases on its Close (or process
// exit).
func lockDir(dir string) (*dirLock, error) {
	f, err := os.OpenFile(filepath.Join(dir, "journal.lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %s is in use by another journal handle: %w", dir, err)
	}
	return &dirLock{f: f}, nil
}
