package journal

import (
	"testing"
	"time"

	"repro/internal/core"
)

// TestTappedBufferHeldUntilFlush pins the refcount contract of the journal
// tap: a broadcast buffer handed to Record cannot return to the frame pool
// until the maintenance sweep's write (and fsync) lands. The journal holds
// two references — one for the replay mirror, one for the pending batch —
// and drops the batch reference only inside Maintain, after
// writeBlobLocked.
func TestTappedBufferHeldUntilFlush(t *testing.T) {
	j, err := Open(Options{Dir: t.TempDir(), Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	// A syncer with an hour-long dwell: Record signals it but no sweep
	// runs, so the flush happens only when the test calls Maintain.
	sy := NewSyncer(time.Hour)
	defer sy.Close()
	sy.Watch(j)

	fb := core.GetFrame(64)
	fb.AppendBytes([]byte("tapped-frame"))
	j.Record(core.JournalEvent, fb)
	fb.Release() // the broadcaster is done; only the journal holds it now

	if got := fb.Refs(); got != 2 {
		t.Fatalf("refs after Record = %d, want 2 (mirror + pending batch)", got)
	}
	if st := j.Stats(); st.Segments != 1 {
		t.Fatalf("unexpected early disk state: %+v", st)
	}

	j.Maintain() // the deferred flush — this is where the batch reference drops
	if got := fb.Refs(); got != 1 {
		t.Fatalf("refs after flush = %d, want 1 (mirror only)", got)
	}

	// The mirror reference survives even a Close (Replay keeps serving it).
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := fb.Refs(); got != 1 {
		t.Fatalf("refs after Close = %d, want 1", got)
	}
	n := 0
	j.Replay(func(core.JournalClass, []byte) bool { n++; return true })
	if n != 1 {
		t.Fatalf("sealed journal replayed %d records, want 1", n)
	}
}

// TestCompactionReleasesDroppedBuffers: compaction folds superseded state
// records away, and their mirror references must drop with them — that is
// the only point a journaled broadcast buffer can finally return to the
// pool. Retained records (the event tail) keep theirs.
func TestCompactionReleasesDroppedBuffers(t *testing.T) {
	j, err := Open(Options{Dir: t.TempDir(), RetainEvents: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.SetSnapshot(func() [][]byte { return [][]byte{[]byte("snapshot-state")} })

	mk := func(s string) *core.FrameBuf {
		fb := core.GetFrame(32)
		fb.AppendBytes([]byte(s))
		return fb
	}
	stale := mk("stale-state")
	j.Record(core.JournalState, stale)
	stale.Release()
	oldEv := mk("old-event")
	j.Record(core.JournalEvent, oldEv)
	oldEv.Release()
	kept1 := mk("kept-event-1")
	j.Record(core.JournalEvent, kept1)
	kept1.Release()
	kept2 := mk("kept-event-2")
	j.Record(core.JournalEvent, kept2)
	kept2.Release()
	j.Maintain() // flush: batch references drop, mirror references remain

	for _, fb := range []*core.FrameBuf{stale, oldEv, kept1, kept2} {
		if fb.Refs() != 1 {
			t.Fatalf("pre-compaction refs = %d, want 1", fb.Refs())
		}
	}

	j.Compact()
	// stale-state folded into the snapshot, old-event beyond the retain
	// bound: both released. The two newest events survive in the mirror.
	if stale.Refs() != 0 || oldEv.Refs() != 0 {
		t.Fatalf("dropped records still referenced: state=%d event=%d", stale.Refs(), oldEv.Refs())
	}
	if kept1.Refs() != 1 || kept2.Refs() != 1 {
		t.Fatalf("retained records lost references: %d %d", kept1.Refs(), kept2.Refs())
	}
}

// TestReplaySurvivesConcurrentCompaction: a replay that grabbed the mirror
// must keep every frame alive for its whole visit even if a compaction
// swaps and releases the records mid-replay — the replay's own retains
// bridge the gap. (Under -tags framedebug a violation is a poisoned read;
// under -race, a use-after-pool report.)
func TestReplaySurvivesConcurrentCompaction(t *testing.T) {
	j, err := Open(Options{Dir: t.TempDir(), RetainEvents: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.SetSnapshot(func() [][]byte { return [][]byte{[]byte("S")} })
	for i := 0; i < 64; i++ {
		fb := core.GetFrame(16)
		fb.AppendBytes(frameOf(core.JournalState, i))
		j.Record(core.JournalState, fb)
		fb.Release()
	}
	j.Maintain()

	compacted := make(chan struct{})
	j.Replay(func(class core.JournalClass, frame []byte) bool {
		select {
		case <-compacted:
		default:
			// Compact once, from inside the visit: every remaining frame of
			// this replay's view is released by the swap while we still
			// read it.
			go func() { j.Compact(); close(compacted) }()
			<-compacted
		}
		if len(frame) == 0 || frame[0] == core.FramePoison && frame[1] == core.FramePoison {
			t.Error("replayed frame recycled mid-visit")
			return false
		}
		return true
	})
}
