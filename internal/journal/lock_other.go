//go:build !unix

package journal

// lockDir is advisory-lock-free on platforms without flock semantics; the
// in-process guards still hold, cross-process exclusion is the operator's
// responsibility there. The returned handle is non-nil and closable like
// the real lock, so callers never special-case the platform (the historic
// (nil, nil) return made every unlock path's nil-safety a per-caller
// obligation).
func lockDir(dir string) (*dirLock, error) { return &dirLock{}, nil }
