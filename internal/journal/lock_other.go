//go:build !unix

package journal

import "os"

// lockDir is advisory-lock-free on platforms without flock semantics; the
// in-process guards still hold, cross-process exclusion is the operator's
// responsibility there.
func lockDir(dir string) (*os.File, error) { return nil, nil }
