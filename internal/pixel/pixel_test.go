package pixel

import (
	"bytes"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	size := 64 * 64 * 4
	a := make([]byte, size)
	b := make([]byte, size)
	for i := range a {
		a[i] = byte(i * 7)
		b[i] = byte(i * 7)
	}
	b[100] = 0xFF // small change

	key := EncodeKey(a)
	back, err := DecodeKey(key, size)
	if err != nil || !bytes.Equal(back, a) {
		t.Fatalf("keyframe round trip failed: %v", err)
	}

	delta, err := EncodeDelta(a, b)
	if err != nil {
		t.Fatal(err)
	}
	back2, err := DecodeDelta(a, delta, size)
	if err != nil || !bytes.Equal(back2, b) {
		t.Fatalf("delta round trip failed: %v", err)
	}
	// Small changes compress dramatically better than keyframes.
	if len(delta) >= len(key)/2 {
		t.Fatalf("delta %d bytes vs key %d: delta coding ineffective", len(delta), len(key))
	}
}

func TestCodecSizeMismatch(t *testing.T) {
	if _, err := EncodeDelta(make([]byte, 4), make([]byte, 8)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := DecodeKey(EncodeKey(make([]byte, 16)), 32); err == nil {
		t.Fatal("wrong decode size accepted")
	}
}

func TestTilesRoundTrip(t *testing.T) {
	// One compressible tile, one incompressible-looking tile.
	flat := make([]byte, 16*16*4)
	for i := range flat {
		flat[i] = 0x40
	}
	noisy := make([]byte, 8*8*4)
	for i := range noisy {
		noisy[i] = byte(i*131 + i>>3)
	}
	var buf []byte
	var err error
	if buf, err = AppendTile(buf, Tile{X: 0, Y: 0, W: 16, H: 16, Pix: flat}); err != nil {
		t.Fatal(err)
	}
	if buf, err = AppendTile(buf, Tile{X: 48, Y: 16, W: 8, H: 8, Pix: noisy}); err != nil {
		t.Fatal(err)
	}

	var got []Tile
	if err := DecodeTiles(buf, func(tl Tile) error {
		got = append(got, tl)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d tiles, want 2", len(got))
	}
	if got[0].X != 0 || got[0].W != 16 || !bytes.Equal(got[0].Pix, flat) {
		t.Fatal("flat tile mismatch")
	}
	if got[1].X != 48 || got[1].Y != 16 || !bytes.Equal(got[1].Pix, noisy) {
		t.Fatal("noisy tile mismatch")
	}
}

func TestTilesRejectTruncation(t *testing.T) {
	pix := make([]byte, 4*4*4)
	buf, err := AppendTile(nil, Tile{W: 4, H: 4, Pix: pix})
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeTiles(buf[:len(buf)-1], func(Tile) error { return nil }); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if err := DecodeTiles(buf[:9], func(Tile) error { return nil }); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := AppendTile(nil, Tile{W: 4, H: 4, Pix: pix[:8]}); err == nil {
		t.Fatal("short tile payload accepted")
	}
}

func TestRekeyerPolicy(t *testing.T) {
	var r Rekeyer
	if seq, key := r.Next(1); seq != 1 || !key {
		t.Fatalf("first frame: seq %d key %v, want 1 true", seq, key)
	}
	if _, key := r.Next(1); key {
		t.Fatal("steady audience re-keyed immediately")
	}
	if _, key := r.Next(2); !key {
		t.Fatal("audience growth did not force a keyframe")
	}
	if _, key := r.Next(1); key {
		t.Fatal("audience shrink forced a keyframe")
	}
	// Cadence: with Interval n, at most n-1 deltas separate keyframes.
	r = Rekeyer{Interval: 4}
	keys := 0
	for i := 0; i < 12; i++ {
		if _, key := r.Next(1); key {
			keys++
		}
	}
	if keys != 3 {
		t.Fatalf("12 frames at interval 4 produced %d keyframes, want 3", keys)
	}
}

func TestAnchorContinuity(t *testing.T) {
	var a Anchor
	if a.Accept(5, EncDelta) {
		t.Fatal("delta accepted before any keyframe")
	}
	if !a.Accept(6, EncKey) {
		t.Fatal("keyframe rejected")
	}
	if !a.Accept(7, EncDelta) {
		t.Fatal("in-sequence delta rejected")
	}
	if a.Accept(9, EncDelta) {
		t.Fatal("gapped delta accepted")
	}
	if a.Accept(10, EncTiles) {
		t.Fatal("update accepted while unanchored")
	}
	if !a.Accept(20, EncKey) {
		t.Fatal("keyframe did not re-anchor after a gap")
	}
	if !a.Accept(21, EncTiles) {
		t.Fatal("in-sequence tile update rejected")
	}
}
