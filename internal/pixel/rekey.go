package pixel

// Rekeyer is the publisher-side keyframe policy. Blob delivery is
// freshest-wins — a slow viewer's ring overwrites its oldest blob — so a
// delta chain is only useful to viewers that saw every link. The policy
// re-keys whenever the audience grew (a late joiner has no base at all)
// and on a periodic cadence that bounds how long a gapped viewer shows a
// stale frame.
type Rekeyer struct {
	// Interval forces a keyframe at least every N frames; <= 0 means 32.
	Interval uint64

	seq      uint64
	sinceKey uint64
	viewers  int
	started  bool
}

// Next allocates the next frame's sequence number and reports whether it
// must be encoded as a keyframe, given the current viewer count.
func (r *Rekeyer) Next(viewers int) (seq uint64, key bool) {
	interval := r.Interval
	if interval == 0 {
		interval = 32
	}
	r.seq++
	key = !r.started || viewers > r.viewers || r.sinceKey+1 >= interval
	r.started = true
	r.viewers = viewers
	if key {
		r.sinceKey = 0
	} else {
		r.sinceKey++
	}
	return r.seq, key
}

// Anchor tracks delta-chain continuity on the viewer side: a delta only
// applies if the viewer decoded the immediately preceding sequence number;
// otherwise the viewer waits, unanchored, for the next keyframe.
type Anchor struct {
	seq      uint64
	anchored bool
}

// Accept reports whether a blob with the given sequence number and
// encoding can be decoded, and records the outcome. Keyframes always
// re-anchor; tile updates and deltas require continuity.
func (a *Anchor) Accept(seq uint64, enc int64) bool {
	if enc == EncKey {
		a.seq, a.anchored = seq, true
		return true
	}
	if a.anchored && seq == a.seq+1 {
		a.seq = seq
		return true
	}
	a.anchored = false
	return false
}
