// Package pixel holds the bitmap encodings shared by the pixel delivery
// tiers: the VizServer-style full-frame keyframe/XOR-delta codec and the
// vnc-style dirty-tile codec. Encoded frames are plain byte payloads made
// to ride the session engine's bulk blob frame class (core.Blob) — encoded
// once, fanned out to every subscribed viewer over the refcounted
// FrameBuf/writev path — rather than any per-connection stream format.
//
// Delta streams and freshest-wins delivery interact: a viewer that loses a
// blob to ring overwrite has no delta base for the next one. Publishers
// therefore re-key — on a new viewer, on a sequence gap, and on a periodic
// cadence — and viewers discard deltas until a keyframe re-anchors them
// (see Rekeyer and the vizserver/vnc packages).
package pixel

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
)

// Blob encodings, carried in core.Blob.Encoding.
const (
	// EncKey is a self-contained flate-compressed frame.
	EncKey int64 = iota
	// EncDelta is a flate-compressed XOR against the previous frame.
	EncDelta
	// EncTiles is a dirty-tile update: a sequence of tile records, each
	// raw or flate-compressed (the vnc-style encoding).
	EncTiles
)

// FlagKey, carried in core.Blob.Flags, marks a tile update that covers the
// whole framebuffer — a keyframe in tile clothing. Tile streams keep
// EncTiles as their payload encoding throughout; viewers map a flagged
// update to EncKey when consulting their Anchor so it re-anchors them.
const FlagKey int64 = 1

// compress flate-compresses b at BestSpeed.
func compress(b []byte) []byte {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return b
	}
	w.Write(b)
	w.Close()
	return buf.Bytes()
}

// decompress inflates b, expecting want bytes.
func decompress(b []byte, want int) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(b))
	out := make([]byte, 0, want)
	buf := make([]byte, 16<<10)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if len(out) != want {
		return nil, fmt.Errorf("pixel: frame %d bytes, want %d", len(out), want)
	}
	return out, nil
}

// EncodeKey encodes a self-contained frame.
func EncodeKey(pix []byte) []byte { return compress(pix) }

// DecodeKey decodes a keyframe of the expected size.
func DecodeKey(data []byte, size int) ([]byte, error) { return decompress(data, size) }

// EncodeDelta encodes cur as a compressed XOR against prev. Frames that
// changed little compress dramatically — the paper's bandwidth claim.
func EncodeDelta(prev, cur []byte) ([]byte, error) {
	if len(prev) != len(cur) {
		return nil, fmt.Errorf("pixel: delta frames differ in size: %d vs %d", len(prev), len(cur))
	}
	x := make([]byte, len(cur))
	for i := range cur {
		x[i] = cur[i] ^ prev[i]
	}
	return compress(x), nil
}

// DecodeDelta reverses EncodeDelta against the receiver's previous frame.
func DecodeDelta(prev, data []byte, size int) ([]byte, error) {
	x, err := decompress(data, size)
	if err != nil {
		return nil, err
	}
	if len(prev) != size {
		return nil, fmt.Errorf("pixel: receiver frame %d bytes, want %d", len(prev), size)
	}
	out := make([]byte, size)
	for i := range out {
		out[i] = x[i] ^ prev[i]
	}
	return out, nil
}

// Tile record encodings inside an EncTiles payload.
const (
	tileRaw uint8 = iota
	tileFlate
)

// Tile is one dirty rectangle of an EncTiles update.
type Tile struct {
	X, Y, W, H int
	// Pix is the tile's raw RGBA pixels, W*H*4 bytes row-major.
	Pix []byte
}

// AppendTile appends one tile record to an EncTiles payload: a fixed
// header [enc u8, x u32, y u32, w u16, h u16, len u32] followed by the raw
// or flate-compressed pixels, whichever is smaller.
func AppendTile(buf []byte, t Tile) ([]byte, error) {
	if len(t.Pix) != t.W*t.H*4 {
		return nil, fmt.Errorf("pixel: tile payload %d bytes, want %d", len(t.Pix), t.W*t.H*4)
	}
	enc, data := tileRaw, t.Pix
	if c := compress(t.Pix); len(c) < len(t.Pix) {
		enc, data = tileFlate, c
	}
	buf = append(buf, enc)
	buf = binary.BigEndian.AppendUint32(buf, uint32(t.X))
	buf = binary.BigEndian.AppendUint32(buf, uint32(t.Y))
	buf = binary.BigEndian.AppendUint16(buf, uint16(t.W))
	buf = binary.BigEndian.AppendUint16(buf, uint16(t.H))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(data)))
	buf = append(buf, data...)
	return buf, nil
}

// DecodeTiles walks an EncTiles payload, invoking apply for every tile.
func DecodeTiles(data []byte, apply func(Tile) error) error {
	for len(data) > 0 {
		if len(data) < 17 {
			return fmt.Errorf("pixel: truncated tile header (%d bytes)", len(data))
		}
		enc := data[0]
		x := int(binary.BigEndian.Uint32(data[1:5]))
		y := int(binary.BigEndian.Uint32(data[5:9]))
		w := int(binary.BigEndian.Uint16(data[9:11]))
		h := int(binary.BigEndian.Uint16(data[11:13]))
		n := int(binary.BigEndian.Uint32(data[13:17]))
		data = data[17:]
		if n > len(data) {
			return fmt.Errorf("pixel: tile payload %d bytes, have %d", n, len(data))
		}
		raw := data[:n]
		data = data[n:]
		switch enc {
		case tileRaw:
		case tileFlate:
			var err error
			if raw, err = decompress(raw, w*h*4); err != nil {
				return err
			}
		default:
			return fmt.Errorf("pixel: unknown tile encoding %d", enc)
		}
		if len(raw) != w*h*4 {
			return fmt.Errorf("pixel: tile %d bytes, want %d", len(raw), w*h*4)
		}
		if err := apply(Tile{X: x, Y: y, W: w, H: h, Pix: raw}); err != nil {
			return err
		}
	}
	return nil
}
