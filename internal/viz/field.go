// Package viz implements the visualization algorithms the paper's
// demonstrations rely on: isosurface extraction from 3D scalar fields (the
// Lattice-Boltzmann fluid-structure views of section 2.2), cutting planes
// (the COVISE post-processing loop of section 4.3), colour mapping, particle
// glyph preparation and tree-domain box outlines (the PEPC views of
// section 3.4).
//
// Isosurfaces are extracted with marching tetrahedra rather than marching
// cubes: each cell is split into six tetrahedra whose per-case triangulation
// is derivable from first principles, giving the same class of output
// (triangle meshes whose size scales with surface area) with a verifiable
// kernel.
package viz

import "fmt"

// ScalarField is a scalar quantity sampled on a regular 3D grid. Data is
// indexed data[(k*Ny+j)*Nx+i] with i fastest, matching the simulation
// packages.
type ScalarField struct {
	Nx, Ny, Nz int
	Data       []float64
	// Origin and Spacing place the grid in world space; Spacing is the
	// distance between adjacent samples on each axis.
	OriginX, OriginY, OriginZ    float64
	SpacingX, SpacingY, SpacingZ float64
}

// NewScalarField allocates a zero field with unit spacing at the origin.
func NewScalarField(nx, ny, nz int) *ScalarField {
	if nx < 1 || ny < 1 || nz < 1 {
		panic(fmt.Sprintf("viz: invalid field size %dx%dx%d", nx, ny, nz))
	}
	return &ScalarField{
		Nx: nx, Ny: ny, Nz: nz,
		Data:     make([]float64, nx*ny*nz),
		SpacingX: 1, SpacingY: 1, SpacingZ: 1,
	}
}

// Index returns the flat index of (i, j, k).
func (f *ScalarField) Index(i, j, k int) int { return (k*f.Ny+j)*f.Nx + i }

// At returns the sample at (i, j, k).
func (f *ScalarField) At(i, j, k int) float64 { return f.Data[f.Index(i, j, k)] }

// Set stores v at (i, j, k).
func (f *ScalarField) Set(i, j, k int, v float64) { f.Data[f.Index(i, j, k)] = v }

// WorldPos returns the world-space position of sample (i, j, k).
func (f *ScalarField) WorldPos(i, j, k int) (x, y, z float64) {
	return f.OriginX + float64(i)*f.SpacingX,
		f.OriginY + float64(j)*f.SpacingY,
		f.OriginZ + float64(k)*f.SpacingZ
}

// MinMax returns the range of the field.
func (f *ScalarField) MinMax() (lo, hi float64) {
	lo, hi = f.Data[0], f.Data[0]
	for _, v := range f.Data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Fill sets every sample from fn(i, j, k).
func (f *ScalarField) Fill(fn func(i, j, k int) float64) {
	idx := 0
	for k := 0; k < f.Nz; k++ {
		for j := 0; j < f.Ny; j++ {
			for i := 0; i < f.Nx; i++ {
				f.Data[idx] = fn(i, j, k)
				idx++
			}
		}
	}
}
