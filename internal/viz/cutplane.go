package viz

import (
	"fmt"

	"repro/internal/render"
)

// Axis selects the slicing axis of a cutting plane.
type Axis int

// Slicing axes.
const (
	AxisX Axis = iota
	AxisY
	AxisZ
)

// String returns the axis name.
func (a Axis) String() string {
	switch a {
	case AxisX:
		return "X"
	case AxisY:
		return "Y"
	case AxisZ:
		return "Z"
	default:
		return fmt.Sprintf("Axis(%d)", int(a))
	}
}

// Colormap maps a normalised value in [0,1] to a colour. The default is a
// blue→white→red diverging map, the classic CFD temperature palette.
type Colormap func(t float64) render.Color

// DefaultColormap is a blue→white→red diverging colour map.
func DefaultColormap(t float64) render.Color {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	if t < 0.5 {
		// blue → white
		s := t * 2
		return render.Color{
			R: uint8(60 + 195*s),
			G: uint8(90 + 165*s),
			B: 255,
			A: 255,
		}
	}
	// white → red
	s := (t - 0.5) * 2
	return render.Color{
		R: 255,
		G: uint8(255 - 215*s),
		B: uint8(255 - 215*s),
		A: 255,
	}
}

// CutPlane extracts an axis-aligned slice through the field at the given
// sample index and returns it as one coloured mesh per distinct colour bucket
// (geometry is grouped into a fixed number of buckets so the mesh count stays
// bounded). The slice index is clamped to the valid range.
func CutPlane(f *ScalarField, axis Axis, index int, cmap Colormap) []*render.Mesh {
	if cmap == nil {
		cmap = DefaultColormap
	}
	lo, hi := f.MinMax()
	span := hi - lo
	if span == 0 {
		span = 1
	}

	const buckets = 16
	meshes := make([]*render.Mesh, buckets)
	for b := range meshes {
		meshes[b] = &render.Mesh{Color: cmap((float64(b) + 0.5) / buckets)}
	}

	// u, v iterate the two in-plane axes; sample() reads the field and
	// pos() computes the world position of in-plane coordinates.
	var nu, nv int
	var sample func(u, v int) float64
	var pos func(u, v int) render.Vec3

	clampIdx := func(i, n int) int {
		if i < 0 {
			return 0
		}
		if i >= n {
			return n - 1
		}
		return i
	}

	switch axis {
	case AxisX:
		i := clampIdx(index, f.Nx)
		nu, nv = f.Ny, f.Nz
		sample = func(u, v int) float64 { return f.At(i, u, v) }
		pos = func(u, v int) render.Vec3 {
			x, y, z := f.WorldPos(i, u, v)
			return render.Vec3{X: x, Y: y, Z: z}
		}
	case AxisY:
		j := clampIdx(index, f.Ny)
		nu, nv = f.Nx, f.Nz
		sample = func(u, v int) float64 { return f.At(u, j, v) }
		pos = func(u, v int) render.Vec3 {
			x, y, z := f.WorldPos(u, j, v)
			return render.Vec3{X: x, Y: y, Z: z}
		}
	default:
		k := clampIdx(index, f.Nz)
		nu, nv = f.Nx, f.Ny
		sample = func(u, v int) float64 { return f.At(u, v, k) }
		pos = func(u, v int) render.Vec3 {
			x, y, z := f.WorldPos(u, v, k)
			return render.Vec3{X: x, Y: y, Z: z}
		}
	}

	for v := 0; v+1 < nv; v++ {
		for u := 0; u+1 < nu; u++ {
			avg := (sample(u, v) + sample(u+1, v) + sample(u, v+1) + sample(u+1, v+1)) / 4
			b := int((avg - lo) / span * buckets)
			if b >= buckets {
				b = buckets - 1
			}
			if b < 0 {
				b = 0
			}
			m := meshes[b]
			base := int32(len(m.Vertices))
			m.Vertices = append(m.Vertices, pos(u, v), pos(u+1, v), pos(u+1, v+1), pos(u, v+1))
			m.Triangles = append(m.Triangles, [3]int32{base, base + 1, base + 2}, [3]int32{base, base + 2, base + 3})
		}
	}

	out := meshes[:0]
	for _, m := range meshes {
		if len(m.Triangles) > 0 {
			out = append(out, m)
		}
	}
	return out
}

// BoxOutline returns the 12 edges of an axis-aligned box, used to display
// PEPC tree domains "as transparent or solid boxes" (section 3.4).
func BoxOutline(min, max render.Vec3) [][2]render.Vec3 {
	c := [8]render.Vec3{
		{X: min.X, Y: min.Y, Z: min.Z},
		{X: max.X, Y: min.Y, Z: min.Z},
		{X: min.X, Y: max.Y, Z: min.Z},
		{X: max.X, Y: max.Y, Z: min.Z},
		{X: min.X, Y: min.Y, Z: max.Z},
		{X: max.X, Y: min.Y, Z: max.Z},
		{X: min.X, Y: max.Y, Z: max.Z},
		{X: max.X, Y: max.Y, Z: max.Z},
	}
	edges := [12][2]int{
		{0, 1}, {2, 3}, {4, 5}, {6, 7}, // x edges
		{0, 2}, {1, 3}, {4, 6}, {5, 7}, // y edges
		{0, 4}, {1, 5}, {2, 6}, {3, 7}, // z edges
	}
	out := make([][2]render.Vec3, 0, 12)
	for _, e := range edges {
		out = append(out, [2]render.Vec3{c[e[0]], c[e[1]]})
	}
	return out
}
