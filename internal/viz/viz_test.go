package viz

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/render"
)

// sphereField returns a field of distance-from-centre values, whose
// isosurfaces are spheres.
func sphereField(n int) *ScalarField {
	f := NewScalarField(n, n, n)
	c := float64(n-1) / 2
	f.Fill(func(i, j, k int) float64 {
		dx, dy, dz := float64(i)-c, float64(j)-c, float64(k)-c
		return math.Sqrt(dx*dx + dy*dy + dz*dz)
	})
	return f
}

func TestFieldIndexing(t *testing.T) {
	f := NewScalarField(3, 4, 5)
	f.Set(2, 3, 4, 7.5)
	if f.At(2, 3, 4) != 7.5 {
		t.Fatal("round trip failed")
	}
	if f.Index(2, 3, 4) != len(f.Data)-1 {
		t.Fatalf("last index = %d, want %d", f.Index(2, 3, 4), len(f.Data)-1)
	}
}

func TestFieldMinMax(t *testing.T) {
	f := NewScalarField(2, 2, 2)
	f.Data = []float64{3, -1, 4, 1, 5, -9, 2, 6}
	lo, hi := f.MinMax()
	if lo != -9 || hi != 6 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
}

func TestFieldWorldPos(t *testing.T) {
	f := NewScalarField(4, 4, 4)
	f.OriginX, f.OriginY, f.OriginZ = 1, 2, 3
	f.SpacingX, f.SpacingY, f.SpacingZ = 0.5, 0.25, 2
	x, y, z := f.WorldPos(2, 4, 1)
	if x != 2 || y != 3 || z != 5 {
		t.Fatalf("WorldPos = %v %v %v", x, y, z)
	}
}

func TestIsosurfaceSphere(t *testing.T) {
	f := sphereField(17)
	r := 5.0
	mesh := Isosurface(f, r, render.Red)
	if len(mesh.Triangles) == 0 {
		t.Fatal("no triangles extracted")
	}
	// Every vertex must lie close to the sphere of radius r.
	c := float64(17-1) / 2
	for _, v := range mesh.Vertices {
		d := math.Sqrt((v.X-c)*(v.X-c) + (v.Y-c)*(v.Y-c) + (v.Z-c)*(v.Z-c))
		if math.Abs(d-r) > 0.35 {
			t.Fatalf("vertex at distance %v, want ~%v", d, r)
		}
	}
}

func TestIsosurfaceEmptyOutsideRange(t *testing.T) {
	f := sphereField(9)
	if m := Isosurface(f, 1e9, render.Red); len(m.Triangles) != 0 {
		t.Fatal("iso above max produced triangles")
	}
	if m := Isosurface(f, -1e9, render.Red); len(m.Triangles) != 0 {
		t.Fatal("iso below min produced triangles")
	}
}

func TestIsosurfaceAreaScaling(t *testing.T) {
	// A larger sphere has more surface area, so more triangles: the property
	// the bandwidth experiments rely on.
	f := sphereField(33)
	small := Isosurface(f, 4, render.Red)
	large := Isosurface(f, 12, render.Red)
	if len(large.Triangles) <= len(small.Triangles) {
		t.Fatalf("triangles: small=%d large=%d, want growth with area",
			len(small.Triangles), len(large.Triangles))
	}
}

func TestIsosurfacePlanarSlab(t *testing.T) {
	// Field = x coordinate: iso at 2.5 is the plane x = 2.5.
	f := NewScalarField(6, 6, 6)
	f.Fill(func(i, j, k int) float64 { return float64(i) })
	mesh := Isosurface(f, 2.5, render.Green)
	if len(mesh.Triangles) == 0 {
		t.Fatal("no plane extracted")
	}
	for _, v := range mesh.Vertices {
		if math.Abs(v.X-2.5) > 1e-9 {
			t.Fatalf("vertex x = %v, want 2.5", v.X)
		}
	}
	// The plane covers the full 5x5 cell cross-section.
	area := 0.0
	for _, tri := range mesh.Triangles {
		a, b, c := mesh.Vertices[tri[0]], mesh.Vertices[tri[1]], mesh.Vertices[tri[2]]
		area += b.Sub(a).Cross(c.Sub(a)).Len() / 2
	}
	if math.Abs(area-25) > 1e-6 {
		t.Fatalf("plane area = %v, want 25", area)
	}
}

func TestIsosurfaceDeterministic(t *testing.T) {
	f := sphereField(13)
	m1 := Isosurface(f, 4, render.Red)
	m2 := Isosurface(f, 4, render.Red)
	if len(m1.Vertices) != len(m2.Vertices) {
		t.Fatal("non-deterministic extraction")
	}
	for i := range m1.Vertices {
		if m1.Vertices[i] != m2.Vertices[i] {
			t.Fatal("vertex mismatch")
		}
	}
}

// Property: marching a random tetrahedron field never emits vertices outside
// the cell bounding box, and interpolated points always lie on edges.
func TestQuickIsosurfaceInBounds(t *testing.T) {
	f := func(seed int64) bool {
		field := NewScalarField(4, 4, 4)
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s%1000) / 500.0
		}
		field.Fill(func(i, j, k int) float64 { return next() })
		mesh := Isosurface(field, 1.0, render.Red)
		for _, v := range mesh.Vertices {
			if v.X < 0 || v.X > 3 || v.Y < 0 || v.Y > 3 || v.Z < 0 || v.Z > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCutPlaneGeometry(t *testing.T) {
	f := NewScalarField(8, 8, 8)
	f.Fill(func(i, j, k int) float64 { return float64(i + j + k) })
	meshes := CutPlane(f, AxisZ, 3, nil)
	if len(meshes) == 0 {
		t.Fatal("no cut plane meshes")
	}
	tris := 0
	for _, m := range meshes {
		tris += len(m.Triangles)
		for _, v := range m.Vertices {
			if v.Z != 3 {
				t.Fatalf("cut plane vertex off plane: z = %v", v.Z)
			}
		}
	}
	if tris != 7*7*2 {
		t.Fatalf("triangles = %d, want %d", tris, 7*7*2)
	}
}

func TestCutPlaneAxes(t *testing.T) {
	f := NewScalarField(5, 6, 7)
	f.Fill(func(i, j, k int) float64 { return float64(i * j * k) })
	for _, tc := range []struct {
		axis Axis
		want int // quads
	}{
		{AxisX, 5 * 6 * 2},
		{AxisY, 4 * 6 * 2},
		{AxisZ, 4 * 5 * 2},
	} {
		tris := 0
		for _, m := range CutPlane(f, tc.axis, 2, nil) {
			tris += len(m.Triangles)
		}
		if tris != tc.want {
			t.Fatalf("axis %v: triangles = %d, want %d", tc.axis, tris, tc.want)
		}
	}
}

func TestCutPlaneClampsIndex(t *testing.T) {
	f := NewScalarField(4, 4, 4)
	if meshes := CutPlane(f, AxisX, 99, nil); len(meshes) == 0 {
		t.Fatal("clamped cut plane empty")
	}
	if meshes := CutPlane(f, AxisX, -5, nil); len(meshes) == 0 {
		t.Fatal("clamped cut plane empty")
	}
}

func TestDefaultColormapEndpoints(t *testing.T) {
	lo := DefaultColormap(0)
	hi := DefaultColormap(1)
	if lo.B != 255 || lo.R >= 200 {
		t.Fatalf("low end not blue: %+v", lo)
	}
	if hi.R != 255 || hi.B >= 200 {
		t.Fatalf("high end not red: %+v", hi)
	}
	mid := DefaultColormap(0.5)
	if mid.R < 240 || mid.G < 240 || mid.B < 240 {
		t.Fatalf("midpoint not white-ish: %+v", mid)
	}
	// Out-of-range inputs clamp rather than wrap.
	if DefaultColormap(-3) != lo || DefaultColormap(7) != hi {
		t.Fatal("colormap does not clamp")
	}
}

func TestBoxOutline(t *testing.T) {
	edges := BoxOutline(render.Vec3{}, render.Vec3{X: 1, Y: 2, Z: 3})
	if len(edges) != 12 {
		t.Fatalf("edges = %d, want 12", len(edges))
	}
	// Sum of edge lengths = 4*(1+2+3).
	total := 0.0
	for _, e := range edges {
		total += e[1].Sub(e[0]).Len()
	}
	if math.Abs(total-24) > 1e-12 {
		t.Fatalf("total edge length = %v, want 24", total)
	}
}

func TestAxisString(t *testing.T) {
	if AxisX.String() != "X" || AxisY.String() != "Y" || AxisZ.String() != "Z" {
		t.Fatal("axis names wrong")
	}
	if Axis(9).String() == "" {
		t.Fatal("unknown axis must still format")
	}
}
