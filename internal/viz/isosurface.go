package viz

import (
	"repro/internal/render"
)

// cubeTets splits the unit cube (corners indexed 0..7 as bit-coded
// (i,j,k) offsets: bit0=x, bit1=y, bit2=z) into six tetrahedra sharing the
// main diagonal 0-7. Every face diagonal is used consistently by both
// adjacent cells, so the extracted surface is crack-free.
var cubeTets = [6][4]int{
	{0, 5, 1, 7},
	{0, 1, 3, 7},
	{0, 3, 2, 7},
	{0, 2, 6, 7},
	{0, 6, 4, 7},
	{0, 4, 5, 7},
}

// cornerOffset maps corner index to (di, dj, dk).
var cornerOffset = [8][3]int{
	{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0},
	{0, 0, 1}, {1, 0, 1}, {0, 1, 1}, {1, 1, 1},
}

// Isosurface extracts the level set field == iso as a triangle mesh using
// marching tetrahedra. The mesh's vertex count grows with the surface area,
// which is exactly the property the bandwidth experiments need: more complex
// fluid structures produce proportionally more geometry.
func Isosurface(f *ScalarField, iso float64, color render.Color) *render.Mesh {
	mesh := &render.Mesh{Color: color}
	var corners [8]render.Vec3
	var values [8]float64

	emit := func(a, b, c render.Vec3) {
		base := int32(len(mesh.Vertices))
		mesh.Vertices = append(mesh.Vertices, a, b, c)
		mesh.Triangles = append(mesh.Triangles, [3]int32{base, base + 1, base + 2})
	}

	for k := 0; k+1 < f.Nz; k++ {
		for j := 0; j+1 < f.Ny; j++ {
			for i := 0; i+1 < f.Nx; i++ {
				for c := 0; c < 8; c++ {
					o := cornerOffset[c]
					ci, cj, ck := i+o[0], j+o[1], k+o[2]
					x, y, z := f.WorldPos(ci, cj, ck)
					corners[c] = render.Vec3{X: x, Y: y, Z: z}
					values[c] = f.At(ci, cj, ck)
				}
				for _, tet := range cubeTets {
					marchTet(
						corners[tet[0]], corners[tet[1]], corners[tet[2]], corners[tet[3]],
						values[tet[0]], values[tet[1]], values[tet[2]], values[tet[3]],
						iso, emit)
				}
			}
		}
	}
	return mesh
}

// interp returns the point where the iso level crosses the edge p0-p1.
func interp(p0, p1 render.Vec3, v0, v1, iso float64) render.Vec3 {
	d := v1 - v0
	t := 0.5
	if d != 0 {
		t = (iso - v0) / d
	}
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return p0.Add(p1.Sub(p0).Scale(t))
}

// marchTet triangulates the iso crossing inside one tetrahedron. There are
// 16 sign cases; by symmetry they reduce to: no crossing, one triangle
// (one corner separated), or one quad (two corners separated, emitted as two
// triangles).
func marchTet(p0, p1, p2, p3 render.Vec3, v0, v1, v2, v3, iso float64, emit func(a, b, c render.Vec3)) {
	var code int
	if v0 < iso {
		code |= 1
	}
	if v1 < iso {
		code |= 2
	}
	if v2 < iso {
		code |= 4
	}
	if v3 < iso {
		code |= 8
	}

	p := [4]render.Vec3{p0, p1, p2, p3}
	v := [4]float64{v0, v1, v2, v3}

	// tri emits the triangle cut off around lone corner a against b,c,d.
	tri := func(a, b, c, d int) {
		emit(
			interp(p[a], p[b], v[a], v[b], iso),
			interp(p[a], p[c], v[a], v[c], iso),
			interp(p[a], p[d], v[a], v[d], iso),
		)
	}
	// quad emits the surface separating edge pair (a,b) from (c,d).
	quad := func(a, b, c, d int) {
		q0 := interp(p[a], p[c], v[a], v[c], iso)
		q1 := interp(p[a], p[d], v[a], v[d], iso)
		q2 := interp(p[b], p[d], v[b], v[d], iso)
		q3 := interp(p[b], p[c], v[b], v[c], iso)
		emit(q0, q1, q2)
		emit(q0, q2, q3)
	}

	switch code {
	case 0x0, 0xF:
		// all corners on the same side: no surface
	case 0x1, 0xE:
		tri(0, 1, 2, 3)
	case 0x2, 0xD:
		tri(1, 0, 2, 3)
	case 0x4, 0xB:
		tri(2, 0, 1, 3)
	case 0x8, 0x7:
		tri(3, 0, 1, 2)
	case 0x3, 0xC:
		quad(0, 1, 2, 3)
	case 0x5, 0xA:
		quad(0, 2, 1, 3)
	case 0x6, 0x9:
		quad(1, 2, 0, 3)
	}
}
