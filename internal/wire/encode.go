package wire

import (
	"encoding/binary"
	"io"
	"math"
)

// Append-style frame builders: each appends one complete message (header +
// payload) to buf and returns the extended slice. They are the zero-copy
// building blocks for composite codecs that assemble several frames into one
// buffer and hand the same bytes to many receivers (encode-once fan-out).
// The builders do not enforce size limits — encoders own their payloads;
// decode-side Limits are what protect receivers from hostile peers.

// AppendHeader appends a frame header for count elements of the kind.
func AppendHeader(buf []byte, tag uint32, kind Kind, count int) []byte {
	buf = append(buf, magic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, tag)
	buf = append(buf, byte(kind), 0, 0, 0)
	return binary.BigEndian.AppendUint32(buf, uint32(count))
}

// AppendInt32s appends an int32-array message.
func AppendInt32s(buf []byte, tag uint32, v []int32) []byte {
	buf = AppendHeader(buf, tag, KindInt32, len(v))
	for _, x := range v {
		buf = binary.BigEndian.AppendUint32(buf, uint32(x))
	}
	return buf
}

// AppendInt64s appends an int64-array message.
func AppendInt64s(buf []byte, tag uint32, v []int64) []byte {
	buf = AppendHeader(buf, tag, KindInt64, len(v))
	for _, x := range v {
		buf = binary.BigEndian.AppendUint64(buf, uint64(x))
	}
	return buf
}

// AppendFloat32s appends a float32-array message.
func AppendFloat32s(buf []byte, tag uint32, v []float32) []byte {
	buf = AppendHeader(buf, tag, KindFloat32, len(v))
	for _, x := range v {
		buf = binary.BigEndian.AppendUint32(buf, math.Float32bits(x))
	}
	return buf
}

// AppendFloat64s appends a float64-array message.
func AppendFloat64s(buf []byte, tag uint32, v []float64) []byte {
	buf = AppendHeader(buf, tag, KindFloat64, len(v))
	for _, x := range v {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return buf
}

// AppendFloat64 appends the value to an already-open float64 frame whose
// header was written by AppendHeader; the caller is responsible for the
// header's count matching the number of appended elements.
func AppendFloat64(buf []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
}

// AppendStrings appends a string-array message.
func AppendStrings(buf []byte, tag uint32, v []string) []byte {
	buf = AppendHeader(buf, tag, KindString, len(v))
	for _, s := range v {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	return buf
}

// AppendBytes appends a single byte-blob message.
func AppendBytes(buf []byte, tag uint32, b []byte) []byte {
	buf = AppendHeader(buf, tag, KindBytes, 1)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	buf = append(buf, b...)
	return buf
}

// AppendBools appends a bool-array message (one byte per element).
func AppendBools(buf []byte, tag uint32, v []bool) []byte {
	buf = AppendHeader(buf, tag, KindBool, len(v))
	for _, x := range v {
		b := byte(0)
		if x {
			b = 1
		}
		buf = append(buf, b)
	}
	return buf
}

// An Encoder writes messages to an output stream. It buffers one message at
// a time and is not safe for concurrent use; wrap writes in the caller's own
// synchronisation when a connection is shared.
type Encoder struct {
	w   io.Writer
	buf []byte
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w, buf: make([]byte, 0, 4096)}
}

func (e *Encoder) flush() error {
	n, err := e.w.Write(e.buf)
	if err == nil && n != len(e.buf) {
		err = ErrShortWrite
	}
	e.buf = e.buf[:0]
	return err
}

// Int32s writes an int32-array message.
func (e *Encoder) Int32s(tag uint32, v []int32) error {
	if len(v) > MaxElements {
		return ErrTooLarge
	}
	e.buf = AppendInt32s(e.buf, tag, v)
	return e.flush()
}

// Int64s writes an int64-array message.
func (e *Encoder) Int64s(tag uint32, v []int64) error {
	if len(v) > MaxElements {
		return ErrTooLarge
	}
	e.buf = AppendInt64s(e.buf, tag, v)
	return e.flush()
}

// Float32s writes a float32-array message.
func (e *Encoder) Float32s(tag uint32, v []float32) error {
	if len(v) > MaxElements {
		return ErrTooLarge
	}
	e.buf = AppendFloat32s(e.buf, tag, v)
	return e.flush()
}

// Float64s writes a float64-array message.
func (e *Encoder) Float64s(tag uint32, v []float64) error {
	if len(v) > MaxElements {
		return ErrTooLarge
	}
	e.buf = AppendFloat64s(e.buf, tag, v)
	return e.flush()
}

// String writes a single-string message.
func (e *Encoder) String(tag uint32, s string) error { return e.Strings(tag, []string{s}) }

// Strings writes a string-array message.
func (e *Encoder) Strings(tag uint32, v []string) error {
	if len(v) > MaxElements {
		return ErrTooLarge
	}
	for _, s := range v {
		if len(s) > MaxBlobLen {
			return ErrTooLarge
		}
	}
	e.buf = AppendStrings(e.buf, tag, v)
	return e.flush()
}

// Bytes writes a single byte-blob message.
func (e *Encoder) Bytes(tag uint32, b []byte) error {
	if len(b) > MaxBlobLen {
		return ErrTooLarge
	}
	e.buf = AppendBytes(e.buf, tag, b)
	return e.flush()
}

// Bools writes a bool-array message.
func (e *Encoder) Bools(tag uint32, v []bool) error {
	if len(v) > MaxElements {
		return ErrTooLarge
	}
	e.buf = AppendBools(e.buf, tag, v)
	return e.flush()
}

// Int writes a single int64 message; the idiomatic way to send one scalar.
func (e *Encoder) Int(tag uint32, v int64) error { return e.Int64s(tag, []int64{v}) }

// Float writes a single float64 message.
func (e *Encoder) Float(tag uint32, v float64) error { return e.Float64s(tag, []float64{v}) }

// Message writes an already-assembled Message, re-encoding its payload.
func (e *Encoder) Message(m *Message) error {
	switch m.Header.Kind {
	case KindInt32:
		return e.Int32s(m.Header.Tag, m.Int32s)
	case KindInt64:
		return e.Int64s(m.Header.Tag, m.Int64s)
	case KindFloat32:
		return e.Float32s(m.Header.Tag, m.Float32s)
	case KindFloat64:
		return e.Float64s(m.Header.Tag, m.Float64s)
	case KindString:
		return e.Strings(m.Header.Tag, m.Strings)
	case KindBool:
		return e.Bools(m.Header.Tag, m.Bools)
	case KindBytes:
		if len(m.Blobs) > MaxElements {
			return ErrTooLarge
		}
		for _, b := range m.Blobs {
			if len(b) > MaxBlobLen {
				return ErrTooLarge
			}
		}
		e.buf = AppendHeader(e.buf, m.Header.Tag, KindBytes, len(m.Blobs))
		for _, b := range m.Blobs {
			e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(b)))
			e.buf = append(e.buf, b...)
		}
		return e.flush()
	default:
		return ErrBadKind
	}
}
