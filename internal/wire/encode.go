package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// An Encoder writes messages to an output stream. It buffers one message at
// a time and is not safe for concurrent use; wrap writes in the caller's own
// synchronisation when a connection is shared.
type Encoder struct {
	w   io.Writer
	buf []byte
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w, buf: make([]byte, 0, 4096)}
}

func (e *Encoder) putHeader(tag uint32, kind Kind, count int) {
	e.buf = append(e.buf, magic[:]...)
	e.buf = binary.BigEndian.AppendUint32(e.buf, tag)
	e.buf = append(e.buf, byte(kind), 0, 0, 0)
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(count))
}

func (e *Encoder) flush() error {
	n, err := e.w.Write(e.buf)
	if err == nil && n != len(e.buf) {
		err = ErrShortWrite
	}
	e.buf = e.buf[:0]
	return err
}

// Int32s writes an int32-array message.
func (e *Encoder) Int32s(tag uint32, v []int32) error {
	if len(v) > MaxElements {
		return ErrTooLarge
	}
	e.putHeader(tag, KindInt32, len(v))
	for _, x := range v {
		e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(x))
	}
	return e.flush()
}

// Int64s writes an int64-array message.
func (e *Encoder) Int64s(tag uint32, v []int64) error {
	if len(v) > MaxElements {
		return ErrTooLarge
	}
	e.putHeader(tag, KindInt64, len(v))
	for _, x := range v {
		e.buf = binary.BigEndian.AppendUint64(e.buf, uint64(x))
	}
	return e.flush()
}

// Float32s writes a float32-array message.
func (e *Encoder) Float32s(tag uint32, v []float32) error {
	if len(v) > MaxElements {
		return ErrTooLarge
	}
	e.putHeader(tag, KindFloat32, len(v))
	for _, x := range v {
		e.buf = binary.BigEndian.AppendUint32(e.buf, math.Float32bits(x))
	}
	return e.flush()
}

// Float64s writes a float64-array message.
func (e *Encoder) Float64s(tag uint32, v []float64) error {
	if len(v) > MaxElements {
		return ErrTooLarge
	}
	e.putHeader(tag, KindFloat64, len(v))
	for _, x := range v {
		e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(x))
	}
	return e.flush()
}

// String writes a single-string message.
func (e *Encoder) String(tag uint32, s string) error { return e.Strings(tag, []string{s}) }

// Strings writes a string-array message.
func (e *Encoder) Strings(tag uint32, v []string) error {
	if len(v) > MaxElements {
		return ErrTooLarge
	}
	for _, s := range v {
		if len(s) > MaxBlobLen {
			return ErrTooLarge
		}
	}
	e.putHeader(tag, KindString, len(v))
	for _, s := range v {
		e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(s)))
		e.buf = append(e.buf, s...)
	}
	return e.flush()
}

// Bytes writes a single byte-blob message.
func (e *Encoder) Bytes(tag uint32, b []byte) error {
	if len(b) > MaxBlobLen {
		return ErrTooLarge
	}
	e.putHeader(tag, KindBytes, 1)
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(b)))
	e.buf = append(e.buf, b...)
	return e.flush()
}

// Int writes a single int64 message; the idiomatic way to send one scalar.
func (e *Encoder) Int(tag uint32, v int64) error { return e.Int64s(tag, []int64{v}) }

// Float writes a single float64 message.
func (e *Encoder) Float(tag uint32, v float64) error { return e.Float64s(tag, []float64{v}) }

// Message writes an already-assembled Message, re-encoding its payload.
func (e *Encoder) Message(m *Message) error {
	switch m.Header.Kind {
	case KindInt32:
		return e.Int32s(m.Header.Tag, m.Int32s)
	case KindInt64:
		return e.Int64s(m.Header.Tag, m.Int64s)
	case KindFloat32:
		return e.Float32s(m.Header.Tag, m.Float32s)
	case KindFloat64:
		return e.Float64s(m.Header.Tag, m.Float64s)
	case KindString:
		return e.Strings(m.Header.Tag, m.Strings)
	case KindBytes:
		if len(m.Blobs) != 1 {
			return fmt.Errorf("%w: bytes message must carry exactly one blob", ErrBadKind)
		}
		return e.Bytes(m.Header.Tag, m.Blobs[0])
	default:
		return ErrBadKind
	}
}
