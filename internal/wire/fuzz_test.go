package wire

import (
	"bytes"
	"testing"
)

// fuzzLimits keeps fuzz memory bounded: a hostile header may claim huge
// counts, and the fuzzer should explore the guard paths, not the allocator.
var fuzzLimits = Limits{MaxElements: 1 << 12, MaxBlobLen: 1 << 12, MaxPayload: 1 << 16}

// FuzzDecode feeds arbitrary bytes to the decoder and round-trips every
// message that decodes: decode → re-encode → decode must reproduce the
// identical byte stream (the codec is canonical).
func FuzzDecode(f *testing.F) {
	f.Add(AppendInt64s(nil, 1, []int64{1, -5, 1 << 40}))
	f.Add(AppendInt32s(nil, 2, []int32{0, -1}))
	f.Add(AppendFloat64s(nil, 3, []float64{3.14, -0.5}))
	f.Add(AppendFloat32s(nil, 4, []float32{1.5}))
	f.Add(AppendStrings(nil, 5, []string{"hello", "", "wörld"}))
	f.Add(AppendBytes(nil, 6, []byte{0, 1, 2, 255}))
	f.Add(AppendBools(nil, 7, []bool{true, false}))
	f.Add(AppendHeader(nil, 8, KindString, 3)) // truncated variable frame
	f.Add([]byte("VSITxxxxxxxxxxxxxxxx"))
	f.Add([]byte("not the protocol at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(bytes.NewReader(data))
		d.SetLimits(fuzzLimits)
		for {
			m, err := d.Next()
			if err != nil {
				return // malformed input must error, never panic or OOM
			}
			var out bytes.Buffer
			if err := NewEncoder(&out).Message(m); err != nil {
				// A decoded bytes message always has exactly Count blobs, so
				// re-encoding can only fail for kinds Message cannot express;
				// none exist today.
				t.Fatalf("re-encode of decoded message failed: %v", err)
			}
			d2 := NewDecoder(bytes.NewReader(out.Bytes()))
			d2.SetLimits(fuzzLimits)
			m2, err := d2.Next()
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			var out2 bytes.Buffer
			if err := NewEncoder(&out2).Message(m2); err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if !bytes.Equal(out.Bytes(), out2.Bytes()) {
				t.Fatalf("codec not canonical:\n  first  %x\n  second %x", out.Bytes(), out2.Bytes())
			}
		}
	})
}
