package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, write func(*Encoder) error) *Message {
	t.Helper()
	var buf bytes.Buffer
	if err := write(NewEncoder(&buf)); err != nil {
		t.Fatalf("encode: %v", err)
	}
	m, err := NewDecoder(&buf).Next()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return m
}

func TestInt32RoundTrip(t *testing.T) {
	in := []int32{0, 1, -1, math.MaxInt32, math.MinInt32, 42}
	m := roundTrip(t, func(e *Encoder) error { return e.Int32s(7, in) })
	if m.Header.Tag != 7 || m.Header.Kind != KindInt32 {
		t.Fatalf("header = %+v", m.Header)
	}
	if !reflect.DeepEqual(m.Int32s, in) {
		t.Fatalf("got %v want %v", m.Int32s, in)
	}
}

func TestInt64RoundTrip(t *testing.T) {
	in := []int64{0, math.MaxInt64, math.MinInt64, -5}
	m := roundTrip(t, func(e *Encoder) error { return e.Int64s(9, in) })
	if !reflect.DeepEqual(m.Int64s, in) {
		t.Fatalf("got %v want %v", m.Int64s, in)
	}
}

func TestFloat32RoundTrip(t *testing.T) {
	in := []float32{0, 1.5, -2.25, math.MaxFloat32, math.SmallestNonzeroFloat32}
	m := roundTrip(t, func(e *Encoder) error { return e.Float32s(1, in) })
	if !reflect.DeepEqual(m.Float32s, in) {
		t.Fatalf("got %v want %v", m.Float32s, in)
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	in := []float64{0, math.Pi, -math.E, math.MaxFloat64}
	m := roundTrip(t, func(e *Encoder) error { return e.Float64s(2, in) })
	if !reflect.DeepEqual(m.Float64s, in) {
		t.Fatalf("got %v want %v", m.Float64s, in)
	}
}

func TestFloatNaNRoundTrip(t *testing.T) {
	m := roundTrip(t, func(e *Encoder) error { return e.Float64s(3, []float64{math.NaN()}) })
	if !math.IsNaN(m.Float64s[0]) {
		t.Fatalf("NaN did not survive: %v", m.Float64s[0])
	}
}

func TestStringRoundTrip(t *testing.T) {
	in := []string{"", "hello", "grid steering", "ünïcode ♞"}
	m := roundTrip(t, func(e *Encoder) error { return e.Strings(4, in) })
	if !reflect.DeepEqual(m.Strings, in) {
		t.Fatalf("got %q want %q", m.Strings, in)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	in := []byte{0, 255, 1, 2, 3}
	m := roundTrip(t, func(e *Encoder) error { return e.Bytes(5, in) })
	if len(m.Blobs) != 1 || !bytes.Equal(m.Blobs[0], in) {
		t.Fatalf("got %v want %v", m.Blobs, in)
	}
}

func TestEmptyArrays(t *testing.T) {
	m := roundTrip(t, func(e *Encoder) error { return e.Float64s(8, nil) })
	if m.Len() != 0 {
		t.Fatalf("len = %d, want 0", m.Len())
	}
}

func TestScalarHelpers(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if err := e.Int(1, -77); err != nil {
		t.Fatal(err)
	}
	if err := e.Float(2, 3.25); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(&buf)
	m1, err := d.Expect(1)
	if err != nil || m1.Int64s[0] != -77 {
		t.Fatalf("int scalar: %v %v", m1, err)
	}
	m2, err := d.Expect(2)
	if err != nil || m2.Float64s[0] != 3.25 {
		t.Fatalf("float scalar: %v %v", m2, err)
	}
}

func TestExpectTagMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Int(10, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDecoder(&buf).Expect(11); err == nil {
		t.Fatal("want tag mismatch error")
	}
}

func TestBadMagic(t *testing.T) {
	buf := bytes.NewBufferString("XXXXxxxxxxxxxxxxxxxx")
	if _, err := NewDecoder(buf).Next(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestBadKind(t *testing.T) {
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Int(1, 1); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[8] = 250 // corrupt kind byte
	if _, err := NewDecoder(bytes.NewReader(b)).Next(); !errors.Is(err, ErrBadKind) {
		t.Fatalf("err = %v, want ErrBadKind", err)
	}
}

func TestTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Float64s(1, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:buf.Len()-4]
	if _, err := NewDecoder(bytes.NewReader(b)).Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestOversizeCountRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Int32s(1, []int32{1}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Patch the count field to something enormous.
	b[12], b[13], b[14], b[15] = 0xff, 0xff, 0xff, 0xff
	if _, err := NewDecoder(bytes.NewReader(b)).Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestConversionFloat32ToFloat64(t *testing.T) {
	m := roundTrip(t, func(e *Encoder) error { return e.Float32s(1, []float32{1.5, -2}) })
	got, err := m.AsFloat64s()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1.5 || got[1] != -2 {
		t.Fatalf("got %v", got)
	}
}

func TestConversionIntWidths(t *testing.T) {
	m := roundTrip(t, func(e *Encoder) error { return e.Int32s(1, []int32{7, -8}) })
	got, err := m.AsInt64s()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 || got[1] != -8 {
		t.Fatalf("got %v", got)
	}
}

func TestConversionRejectsFloatToInt(t *testing.T) {
	m := roundTrip(t, func(e *Encoder) error { return e.Float64s(1, []float64{1.5}) })
	if _, err := m.AsInt64s(); !errors.Is(err, ErrKindClash) {
		t.Fatalf("err = %v, want ErrKindClash", err)
	}
}

func TestConversionFloat64ToFloat32Narrows(t *testing.T) {
	m := roundTrip(t, func(e *Encoder) error { return e.Float64s(1, []float64{math.Pi}) })
	got, err := m.AsFloat32s()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != float32(math.Pi) {
		t.Fatalf("got %v", got[0])
	}
}

func TestAsString(t *testing.T) {
	m := roundTrip(t, func(e *Encoder) error { return e.String(1, "abc") })
	s, err := m.AsString()
	if err != nil || s != "abc" {
		t.Fatalf("got %q, %v", s, err)
	}
	m2 := roundTrip(t, func(e *Encoder) error { return e.Strings(1, []string{"a", "b"}) })
	if _, err := m2.AsString(); err == nil {
		t.Fatal("want error for multi-string message")
	}
}

func TestMessageStream(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	for i := 0; i < 100; i++ {
		if err := e.Int(uint32(i), int64(i*i)); err != nil {
			t.Fatal(err)
		}
	}
	d := NewDecoder(&buf)
	for i := 0; i < 100; i++ {
		m, err := d.Next()
		if err != nil {
			t.Fatal(err)
		}
		if m.Header.Tag != uint32(i) || m.Int64s[0] != int64(i*i) {
			t.Fatalf("message %d corrupted: %+v", i, m)
		}
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("want EOF at stream end, got %v", err)
	}
}

func TestReEncodeMessage(t *testing.T) {
	m := roundTrip(t, func(e *Encoder) error { return e.Float32s(9, []float32{1, 2, 3}) })
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Message(m); err != nil {
		t.Fatal(err)
	}
	m2, err := NewDecoder(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, m2) {
		t.Fatalf("re-encode changed message: %+v vs %+v", m, m2)
	}
}

// Property: every float64 payload survives a round trip bit-exactly.
func TestQuickFloat64RoundTrip(t *testing.T) {
	f := func(tag uint32, v []float64) bool {
		var buf bytes.Buffer
		if err := NewEncoder(&buf).Float64s(tag, v); err != nil {
			return false
		}
		m, err := NewDecoder(&buf).Next()
		if err != nil || m.Header.Tag != tag || m.Len() != len(v) {
			return false
		}
		for i := range v {
			if math.Float64bits(m.Float64s[i]) != math.Float64bits(v[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: string arrays survive round trips.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(tag uint32, v []string) bool {
		var buf bytes.Buffer
		if err := NewEncoder(&buf).Strings(tag, v); err != nil {
			return false
		}
		m, err := NewDecoder(&buf).Next()
		if err != nil || m.Len() != len(v) {
			return false
		}
		for i := range v {
			if m.Strings[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: int32 payloads survive and decode never panics on random bytes.
func TestQuickInt32RoundTrip(t *testing.T) {
	f := func(tag uint32, v []int32) bool {
		var buf bytes.Buffer
		if err := NewEncoder(&buf).Int32s(tag, v); err != nil {
			return false
		}
		m, err := NewDecoder(&buf).Next()
		return err == nil && reflect.DeepEqual(append([]int32{}, v...), append([]int32{}, m.Int32s...))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding arbitrary garbage returns an error, never panics.
func TestQuickDecodeGarbage(t *testing.T) {
	f := func(b []byte) bool {
		d := NewDecoder(bytes.NewReader(b))
		for {
			if _, err := d.Next(); err != nil {
				return true
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
