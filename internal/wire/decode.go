package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// A Decoder reads messages from an input stream. It is not safe for
// concurrent use.
type Decoder struct {
	r   *bufio.Reader
	hdr [headerSize]byte
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	if br, ok := r.(*bufio.Reader); ok {
		return &Decoder{r: br}
	}
	return &Decoder{r: bufio.NewReaderSize(r, 32<<10)}
}

// readHeader reads and validates one message header.
func (d *Decoder) readHeader() (Header, error) {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		return Header{}, err
	}
	if [4]byte(d.hdr[0:4]) != magic {
		return Header{}, ErrBadMagic
	}
	h := Header{
		Tag:   binary.BigEndian.Uint32(d.hdr[4:8]),
		Kind:  Kind(d.hdr[8]),
		Count: binary.BigEndian.Uint32(d.hdr[12:16]),
	}
	if h.Kind == KindInvalid || h.Kind > KindBytes {
		return Header{}, ErrBadKind
	}
	if h.Count > MaxElements {
		return Header{}, ErrTooLarge
	}
	return h, nil
}

// Next reads the next message, whatever its tag and kind.
func (d *Decoder) Next() (*Message, error) {
	h, err := d.readHeader()
	if err != nil {
		return nil, err
	}
	m := &Message{Header: h}
	n := int(h.Count)
	switch h.Kind {
	case KindInt32:
		m.Int32s = make([]int32, n)
		var b [4]byte
		for i := range m.Int32s {
			if _, err := io.ReadFull(d.r, b[:]); err != nil {
				return nil, err
			}
			m.Int32s[i] = int32(binary.BigEndian.Uint32(b[:]))
		}
	case KindInt64:
		m.Int64s = make([]int64, n)
		var b [8]byte
		for i := range m.Int64s {
			if _, err := io.ReadFull(d.r, b[:]); err != nil {
				return nil, err
			}
			m.Int64s[i] = int64(binary.BigEndian.Uint64(b[:]))
		}
	case KindFloat32:
		m.Float32s = make([]float32, n)
		var b [4]byte
		for i := range m.Float32s {
			if _, err := io.ReadFull(d.r, b[:]); err != nil {
				return nil, err
			}
			m.Float32s[i] = math.Float32frombits(binary.BigEndian.Uint32(b[:]))
		}
	case KindFloat64:
		m.Float64s = make([]float64, n)
		var b [8]byte
		for i := range m.Float64s {
			if _, err := io.ReadFull(d.r, b[:]); err != nil {
				return nil, err
			}
			m.Float64s[i] = math.Float64frombits(binary.BigEndian.Uint64(b[:]))
		}
	case KindString:
		m.Strings = make([]string, n)
		for i := range m.Strings {
			s, err := d.readBlob()
			if err != nil {
				return nil, err
			}
			m.Strings[i] = string(s)
		}
	case KindBytes:
		m.Blobs = make([][]byte, n)
		for i := range m.Blobs {
			b, err := d.readBlob()
			if err != nil {
				return nil, err
			}
			m.Blobs[i] = b
		}
	}
	return m, nil
}

func (d *Decoder) readBlob() ([]byte, error) {
	var lb [4]byte
	if _, err := io.ReadFull(d.r, lb[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lb[:])
	if n > MaxBlobLen {
		return nil, ErrTooLarge
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// Expect reads the next message and verifies its tag. A tag mismatch is a
// protocol error: the VISIT exchanges in this repository are strictly
// request/response ordered per connection.
func (d *Decoder) Expect(tag uint32) (*Message, error) {
	m, err := d.Next()
	if err != nil {
		return nil, err
	}
	if m.Header.Tag != tag {
		return nil, fmt.Errorf("wire: got tag %d, want %d", m.Header.Tag, tag)
	}
	return m, nil
}
