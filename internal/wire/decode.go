package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// A Decoder reads messages from an input stream. It is not safe for
// concurrent use.
type Decoder struct {
	r      *bufio.Reader
	hdr    [headerSize]byte
	limits Limits
	// scratch is the reused chunk buffer for fixed-size payloads; its size
	// bounds how much is read (and allocated) ahead of conversion.
	scratch []byte
}

// NewDecoder returns a Decoder reading from r with the default Limits.
func NewDecoder(r io.Reader) *Decoder {
	d := &Decoder{limits: Limits{}.withDefaults()}
	if br, ok := r.(*bufio.Reader); ok {
		d.r = br
	} else {
		d.r = bufio.NewReaderSize(r, 32<<10)
	}
	return d
}

// SetLimits replaces the decoder's allocation limits. Zero fields select the
// package defaults. Frames exceeding a limit fail with ErrTooLarge before
// their payload is allocated.
func (d *Decoder) SetLimits(l Limits) { d.limits = l.withDefaults() }

// Reset points the decoder at a new stream, keeping its limits and scratch
// buffer: the reuse hook for pooled connections and benchmarks.
func (d *Decoder) Reset(r io.Reader) {
	if br, ok := r.(*bufio.Reader); ok {
		d.r = br
		return
	}
	if d.r == nil {
		d.r = bufio.NewReaderSize(r, 32<<10)
		return
	}
	d.r.Reset(r)
}

// allocChunk bounds the number of elements allocated ahead of the data
// actually read, so a hostile header claiming a huge count cannot force a
// huge allocation: slices grow with the stream instead.
const allocChunk = 8192

// readHeader reads and validates one message header.
func (d *Decoder) readHeader() (Header, error) {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		return Header{}, err
	}
	if [4]byte(d.hdr[0:4]) != magic {
		return Header{}, ErrBadMagic
	}
	h := Header{
		Tag:   binary.BigEndian.Uint32(d.hdr[4:8]),
		Kind:  Kind(d.hdr[8]),
		Count: binary.BigEndian.Uint32(d.hdr[12:16]),
	}
	if !h.Kind.Valid() {
		return Header{}, ErrBadKind
	}
	if h.Count > d.limits.MaxElements {
		return Header{}, fmt.Errorf("%w: %d elements (limit %d)", ErrTooLarge, h.Count, d.limits.MaxElements)
	}
	if sz := h.Kind.size(); sz > 0 {
		if int64(h.Count)*int64(sz) > int64(d.limits.MaxPayload) {
			return Header{}, fmt.Errorf("%w: %d-byte payload (limit %d)", ErrTooLarge, int64(h.Count)*int64(sz), d.limits.MaxPayload)
		}
	} else if int64(h.Count)*4 > int64(d.limits.MaxPayload) {
		// Variable-length elements carry at least a 4-byte length prefix
		// each, so the count alone bounds the minimum payload.
		return Header{}, fmt.Errorf("%w: %d variable-length elements (limit %d bytes)", ErrTooLarge, h.Count, d.limits.MaxPayload)
	}
	return h, nil
}

// Next reads the next message, whatever its tag and kind.
func (d *Decoder) Next() (*Message, error) {
	h, err := d.readHeader()
	if err != nil {
		return nil, err
	}
	m := &Message{Header: h}
	n := int(h.Count)
	switch h.Kind {
	case KindInt32:
		m.Int32s = make([]int32, 0, min(n, allocChunk))
		err = d.readFixed(n, 4, func(b []byte) {
			m.Int32s = append(m.Int32s, int32(binary.BigEndian.Uint32(b)))
		})
	case KindInt64:
		m.Int64s = make([]int64, 0, min(n, allocChunk))
		err = d.readFixed(n, 8, func(b []byte) {
			m.Int64s = append(m.Int64s, int64(binary.BigEndian.Uint64(b)))
		})
	case KindFloat32:
		m.Float32s = make([]float32, 0, min(n, allocChunk))
		err = d.readFixed(n, 4, func(b []byte) {
			m.Float32s = append(m.Float32s, math.Float32frombits(binary.BigEndian.Uint32(b)))
		})
	case KindFloat64:
		m.Float64s = make([]float64, 0, min(n, allocChunk))
		err = d.readFixed(n, 8, func(b []byte) {
			m.Float64s = append(m.Float64s, math.Float64frombits(binary.BigEndian.Uint64(b)))
		})
	case KindBool:
		m.Bools = make([]bool, 0, min(n, allocChunk))
		err = d.readFixed(n, 1, func(b []byte) {
			m.Bools = append(m.Bools, b[0] != 0)
		})
	case KindString:
		m.Strings = make([]string, 0, min(n, allocChunk))
		budget := d.limits.MaxPayload
		for i := 0; i < n; i++ {
			var s []byte
			if s, err = d.readBlob(&budget); err != nil {
				break
			}
			m.Strings = append(m.Strings, string(s))
		}
	case KindBytes:
		m.Blobs = make([][]byte, 0, min(n, allocChunk))
		budget := d.limits.MaxPayload
		for i := 0; i < n; i++ {
			var b []byte
			if b, err = d.readBlob(&budget); err != nil {
				break
			}
			m.Blobs = append(m.Blobs, b)
		}
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// readFixed streams n elements of size sz bytes each through emit, reading
// the payload in bounded chunks so allocation tracks the bytes actually
// received rather than the count a (possibly hostile) header claims.
func (d *Decoder) readFixed(n, sz int, emit func([]byte)) error {
	const chunkBytes = 32 << 10
	if cap(d.scratch) < chunkBytes {
		d.scratch = make([]byte, chunkBytes)
	}
	for n > 0 {
		c := min(n, chunkBytes/sz)
		buf := d.scratch[:c*sz]
		if _, err := io.ReadFull(d.r, buf); err != nil {
			return err
		}
		for off := 0; off < len(buf); off += sz {
			emit(buf[off : off+sz])
		}
		n -= c
	}
	return nil
}

// readBlob reads one length-prefixed blob, charging prefix and data against
// the message's remaining payload budget.
func (d *Decoder) readBlob(budget *int) ([]byte, error) {
	var lb [4]byte
	if _, err := io.ReadFull(d.r, lb[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lb[:])
	if int64(n) > int64(d.limits.MaxBlobLen) {
		return nil, fmt.Errorf("%w: %d-byte blob (limit %d)", ErrTooLarge, n, d.limits.MaxBlobLen)
	}
	*budget -= 4 + int(n)
	if *budget < 0 {
		return nil, fmt.Errorf("%w: message payload exceeds %d bytes", ErrTooLarge, d.limits.MaxPayload)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// Expect reads the next message and verifies its tag. A tag mismatch is a
// protocol error: the VISIT exchanges in this repository are strictly
// request/response ordered per connection.
func (d *Decoder) Expect(tag uint32) (*Message, error) {
	m, err := d.Next()
	if err != nil {
		return nil, err
	}
	if m.Header.Tag != tag {
		return nil, fmt.Errorf("wire: got tag %s, want %s", TagLabel(m.Header.Tag), TagLabel(tag))
	}
	return m, nil
}
