// Package wire implements the tagged, typed binary message format used by
// every transport in this repository. It reproduces the data-transport layer
// of the VISIT toolkit (Brooke et al., SC2003, section 3.2): messages are
// "distinguished via tags" like MPI messages, carry simple data types
// (integers, floats, strings, byte blobs and arrays of these), and any data
// conversion (byte order, precision) is performed by the receiver so that the
// sending simulation is disturbed as little as possible.
//
// All multi-byte quantities are big-endian on the wire. A message is a fixed
// 16-byte header followed by a payload:
//
//	offset size  field
//	0      4     magic "VSIT"
//	4      4     tag (uint32, application-defined routing key)
//	8      1     element type (Kind)
//	9      3     reserved (zero)
//	12     4     element count (uint32)
//	16     ...   payload: count elements of the declared kind
//
// Strings and byte blobs are encoded as a single element whose payload is a
// 4-byte length followed by the raw bytes.
package wire

import (
	"errors"
	"fmt"
)

// Kind identifies the element type carried by a message.
type Kind uint8

// Element kinds supported on the wire. These mirror the VISIT basic types:
// strings, integers, floats and arrays thereof.
const (
	KindInvalid Kind = iota
	KindInt32
	KindInt64
	KindFloat32
	KindFloat64
	KindString
	KindBytes
	KindBool
)

// String returns the human-readable name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt32:
		return "int32"
	case KindInt64:
		return "int64"
	case KindFloat32:
		return "float32"
	case KindFloat64:
		return "float64"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(k))
	}
}

// Valid reports whether the kind is one the codec understands.
func (k Kind) Valid() bool { return k > KindInvalid && k <= KindBool }

// size returns the on-wire size of one element of the kind, or 0 for
// variable-length kinds (string, bytes).
func (k Kind) size() int {
	switch k {
	case KindInt32, KindFloat32:
		return 4
	case KindInt64, KindFloat64:
		return 8
	case KindBool:
		return 1
	default:
		return 0
	}
}

// Header describes one message.
type Header struct {
	Tag   uint32
	Kind  Kind
	Count uint32
}

// magic is the wire magic prefix of every message.
var magic = [4]byte{'V', 'S', 'I', 'T'}

// headerSize is the fixed size of the encoded header.
const headerSize = 16

// MaxElements is the default bound on the element count of a single message.
// It protects receivers from allocating unbounded memory on a corrupt or
// hostile header; tighten it per decoder with Decoder.SetLimits.
const MaxElements = 64 << 20

// MaxBlobLen is the default bound on the length of a single string or
// byte-blob element.
const MaxBlobLen = 256 << 20

// MaxPayload is the default bound on the total payload bytes of a single
// message (fixed-size elements, or length prefixes plus blob bytes for the
// variable-length kinds).
const MaxPayload = 256 << 20

// Limits bounds what a Decoder will accept for one message. The zero value
// of a field selects the package default; receivers facing untrusted peers
// should set limits matching the largest frame they legitimately expect.
type Limits struct {
	// MaxElements caps Header.Count.
	MaxElements uint32
	// MaxBlobLen caps one string/bytes element.
	MaxBlobLen int
	// MaxPayload caps the total payload bytes of one message.
	MaxPayload int
}

// withDefaults fills zero fields with the package defaults.
func (l Limits) withDefaults() Limits {
	if l.MaxElements == 0 {
		l.MaxElements = MaxElements
	}
	if l.MaxBlobLen == 0 {
		l.MaxBlobLen = MaxBlobLen
	}
	if l.MaxPayload == 0 {
		l.MaxPayload = MaxPayload
	}
	return l
}

// TagName maps tag values to symbolic names for diagnostics. Packages that
// own a tag space register their names from an init function; the map is
// read without locking after that, so it must not be mutated once the
// program is serving traffic.
var TagName = map[uint32]string{}

// TagLabel renders a tag for an error message: "name (0xhex)" when the tag
// is registered in TagName, "decimal (0xhex)" otherwise.
func TagLabel(tag uint32) string {
	if name, ok := TagName[tag]; ok {
		return fmt.Sprintf("%s (0x%x)", name, tag)
	}
	return fmt.Sprintf("%d (0x%x)", tag, tag)
}

// Errors reported by the codec.
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadKind    = errors.New("wire: unknown element kind")
	ErrTooLarge   = errors.New("wire: message exceeds size limits")
	ErrKindClash  = errors.New("wire: element kind does not match request")
	ErrShortWrite = errors.New("wire: short write")
)

// Message is a decoded message: the header plus its payload in native form.
// Exactly one of the slices is populated, matching Header.Kind; String
// payloads are stored in Strings, byte blobs in Blobs.
type Message struct {
	Header   Header
	Int32s   []int32
	Int64s   []int64
	Float32s []float32
	Float64s []float64
	Strings  []string
	Blobs    [][]byte
	Bools    []bool
}

// Len reports the number of payload elements.
func (m *Message) Len() int { return int(m.Header.Count) }

// AsFloat64s returns the payload as float64s, converting from any numeric
// kind. This is the receiver-side conversion the paper requires: the server
// adapts precision so the simulation never does.
func (m *Message) AsFloat64s() ([]float64, error) {
	switch m.Header.Kind {
	case KindFloat64:
		return m.Float64s, nil
	case KindFloat32:
		out := make([]float64, len(m.Float32s))
		for i, v := range m.Float32s {
			out[i] = float64(v)
		}
		return out, nil
	case KindInt32:
		out := make([]float64, len(m.Int32s))
		for i, v := range m.Int32s {
			out[i] = float64(v)
		}
		return out, nil
	case KindInt64:
		out := make([]float64, len(m.Int64s))
		for i, v := range m.Int64s {
			out[i] = float64(v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: cannot convert %s to float64", ErrKindClash, m.Header.Kind)
	}
}

// AsFloat32s returns the payload as float32s, converting (and narrowing)
// from any numeric kind.
func (m *Message) AsFloat32s() ([]float32, error) {
	switch m.Header.Kind {
	case KindFloat32:
		return m.Float32s, nil
	case KindFloat64:
		out := make([]float32, len(m.Float64s))
		for i, v := range m.Float64s {
			out[i] = float32(v)
		}
		return out, nil
	case KindInt32:
		out := make([]float32, len(m.Int32s))
		for i, v := range m.Int32s {
			out[i] = float32(v)
		}
		return out, nil
	case KindInt64:
		out := make([]float32, len(m.Int64s))
		for i, v := range m.Int64s {
			out[i] = float32(v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: cannot convert %s to float32", ErrKindClash, m.Header.Kind)
	}
}

// AsInt64s returns the payload as int64s, converting from any integer kind
// (bools widen to 0/1). Float payloads are rejected: silent truncation would
// hide steering bugs.
func (m *Message) AsInt64s() ([]int64, error) {
	switch m.Header.Kind {
	case KindInt64:
		return m.Int64s, nil
	case KindInt32:
		out := make([]int64, len(m.Int32s))
		for i, v := range m.Int32s {
			out[i] = int64(v)
		}
		return out, nil
	case KindBool:
		out := make([]int64, len(m.Bools))
		for i, v := range m.Bools {
			if v {
				out[i] = 1
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: cannot convert %s to int64", ErrKindClash, m.Header.Kind)
	}
}

// AsBools returns the payload as bools, converting any integer kind by the
// nonzero-is-true rule.
func (m *Message) AsBools() ([]bool, error) {
	switch m.Header.Kind {
	case KindBool:
		return m.Bools, nil
	case KindInt64:
		out := make([]bool, len(m.Int64s))
		for i, v := range m.Int64s {
			out[i] = v != 0
		}
		return out, nil
	case KindInt32:
		out := make([]bool, len(m.Int32s))
		for i, v := range m.Int32s {
			out[i] = v != 0
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: cannot convert %s to bool", ErrKindClash, m.Header.Kind)
	}
}

// AsString returns the payload as a single string. It accepts one-element
// string and bytes messages.
func (m *Message) AsString() (string, error) {
	switch {
	case m.Header.Kind == KindString && len(m.Strings) == 1:
		return m.Strings[0], nil
	case m.Header.Kind == KindBytes && len(m.Blobs) == 1:
		return string(m.Blobs[0]), nil
	default:
		return "", fmt.Errorf("%w: message is %s x%d, want one string", ErrKindClash, m.Header.Kind, m.Header.Count)
	}
}
