package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestBoolRoundTrip(t *testing.T) {
	m := roundTrip(t, func(e *Encoder) error { return e.Bools(9, []bool{true, false, true, true}) })
	if m.Header.Kind != KindBool || len(m.Bools) != 4 {
		t.Fatalf("decoded %+v", m)
	}
	want := []bool{true, false, true, true}
	for i, v := range want {
		if m.Bools[i] != v {
			t.Fatalf("bools = %v, want %v", m.Bools, want)
		}
	}
	ints, err := m.AsInt64s()
	if err != nil || ints[0] != 1 || ints[1] != 0 {
		t.Fatalf("AsInt64s = %v, %v", ints, err)
	}
}

func TestAsBoolsConversion(t *testing.T) {
	m := roundTrip(t, func(e *Encoder) error { return e.Int64s(1, []int64{0, 2, -1}) })
	bs, err := m.AsBools()
	if err != nil || bs[0] || !bs[1] || !bs[2] {
		t.Fatalf("AsBools = %v, %v", bs, err)
	}
	m = roundTrip(t, func(e *Encoder) error { return e.Strings(1, []string{"x"}) })
	if _, err := m.AsBools(); !errors.Is(err, ErrKindClash) {
		t.Fatalf("string AsBools err = %v", err)
	}
}

func TestAppendBuildersMatchEncoder(t *testing.T) {
	var streamed bytes.Buffer
	e := NewEncoder(&streamed)
	if err := e.Int64s(7, []int64{1, -2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := e.Strings(8, []string{"a", "bc"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Bools(9, []bool{true, false}); err != nil {
		t.Fatal(err)
	}
	if err := e.Float32s(10, []float32{1.5}); err != nil {
		t.Fatal(err)
	}
	if err := e.Int32s(11, []int32{-4}); err != nil {
		t.Fatal(err)
	}
	if err := e.Bytes(12, []byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}

	var built []byte
	built = AppendInt64s(built, 7, []int64{1, -2, 3})
	built = AppendStrings(built, 8, []string{"a", "bc"})
	built = AppendBools(built, 9, []bool{true, false})
	built = AppendFloat32s(built, 10, []float32{1.5})
	built = AppendInt32s(built, 11, []int32{-4})
	built = AppendBytes(built, 12, []byte{0xde, 0xad})

	if !bytes.Equal(streamed.Bytes(), built) {
		t.Fatal("append builders and Encoder disagree on the byte stream")
	}
}

// patchCount rewrites the header count field of an encoded frame.
func patchCount(b []byte, count uint32) {
	binary.BigEndian.PutUint32(b[12:16], count)
}

func TestLimitsMaxElements(t *testing.T) {
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Int64s(1, []int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(bytes.NewReader(buf.Bytes()))
	d.SetLimits(Limits{MaxElements: 3})
	if _, err := d.Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	// At the limit it decodes.
	d = NewDecoder(bytes.NewReader(buf.Bytes()))
	d.SetLimits(Limits{MaxElements: 4})
	if _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
}

func TestLimitsMaxPayloadFixed(t *testing.T) {
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Float64s(1, make([]float64, 100)); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(bytes.NewReader(buf.Bytes()))
	d.SetLimits(Limits{MaxPayload: 99 * 8})
	if _, err := d.Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestLimitsMaxPayloadVariableCount(t *testing.T) {
	// A string frame claiming 2^20 elements must be rejected by the length
	// prefixes alone when MaxPayload is small, before any allocation.
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Strings(1, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	patchCount(b, 1<<20)
	d := NewDecoder(bytes.NewReader(b))
	d.SetLimits(Limits{MaxPayload: 1 << 10})
	if _, err := d.Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestLimitsBlobBudget(t *testing.T) {
	// Several blobs, individually small, must not exceed the message payload
	// budget cumulatively.
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Strings(1, []string{"aaaa", "bbbb", "cccc"}); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(bytes.NewReader(buf.Bytes()))
	d.SetLimits(Limits{MaxPayload: 20}) // 3 blobs cost 3*(4+4) = 24 bytes
	if _, err := d.Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	d = NewDecoder(bytes.NewReader(buf.Bytes()))
	d.SetLimits(Limits{MaxPayload: 24})
	if _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
}

func TestLimitsMaxBlobLen(t *testing.T) {
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Bytes(1, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(bytes.NewReader(buf.Bytes()))
	d.SetLimits(Limits{MaxBlobLen: 63})
	if _, err := d.Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestHugeCountClaimDoesNotPreallocate(t *testing.T) {
	// A frame header claiming the default-limit maximum count with no data
	// behind it must fail on EOF after bounded allocation, not OOM. The
	// chunked reader allocates as data arrives, so this returns quickly.
	b := AppendHeader(nil, 1, KindFloat64, 0)
	patchCount(b, MaxElements)
	if _, err := NewDecoder(bytes.NewReader(b)).Next(); err == nil {
		t.Fatal("truncated huge frame decoded")
	}
}
