package covise

import (
	"fmt"
	"sort"
	"sync"
)

// node is one module instance placed on a host.
type node struct {
	name   string
	host   *Host
	module Module
	params map[string]float64
	dirty  bool
	// outputs maps port -> data object name of the last execution.
	outputs map[string]string
}

// connection wires an output port to an input port.
type connection struct {
	fromModule, fromPort string
	toModule, toPort     string
}

// Controller is the central session manager: "session management for adding
// new hosts and synchronizing the tasks in the module network is done in a
// central controller which has the only knowledge about the whole
// application topology".
type Controller struct {
	mu    sync.Mutex
	nodes map[string]*node
	order []string // insertion order, for deterministic scheduling
	conns []connection

	execWaves  uint64
	execsTotal uint64
}

// NewController returns an empty map.
func NewController() *Controller {
	return &Controller{nodes: make(map[string]*node)}
}

// AddModule places a module instance named name on a host.
func (c *Controller) AddModule(name string, host *Host, m Module) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.nodes[name]; dup {
		return fmt.Errorf("covise: duplicate module %q", name)
	}
	c.nodes[name] = &node{
		name: name, host: host, module: m,
		params:  make(map[string]float64),
		dirty:   true,
		outputs: make(map[string]string),
	}
	c.order = append(c.order, name)
	return nil
}

// Connect wires from:port to to:port.
func (c *Controller) Connect(fromModule, fromPort, toModule, toPort string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[fromModule]; !ok {
		return fmt.Errorf("covise: no module %q", fromModule)
	}
	if _, ok := c.nodes[toModule]; !ok {
		return fmt.Errorf("covise: no module %q", toModule)
	}
	for _, conn := range c.conns {
		if conn.toModule == toModule && conn.toPort == toPort {
			return fmt.Errorf("covise: input %s:%s already connected", toModule, toPort)
		}
	}
	c.conns = append(c.conns, connection{fromModule, fromPort, toModule, toPort})
	return nil
}

// SetParam updates a module parameter and marks it dirty; the change takes
// effect at the next Execute.
func (c *Controller) SetParam(module, param string, value float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[module]
	if !ok {
		return fmt.Errorf("covise: no module %q", module)
	}
	if n.params[param] != value {
		n.params[param] = value
		n.dirty = true
	}
	return nil
}

// Param reads a module parameter.
func (c *Controller) Param(module, param string) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[module]
	if !ok {
		return 0, fmt.Errorf("covise: no module %q", module)
	}
	return n.params[param], nil
}

// MarkDirty forces a module to re-execute at the next wave (e.g. a source
// whose underlying simulation advanced).
func (c *Controller) MarkDirty(module string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[module]
	if !ok {
		return fmt.Errorf("covise: no module %q", module)
	}
	n.dirty = true
	return nil
}

// topoOrder returns module names in dependency order.
func (c *Controller) topoOrder() ([]string, error) {
	indeg := make(map[string]int, len(c.nodes))
	adj := make(map[string][]string)
	for _, name := range c.order {
		indeg[name] = 0
	}
	for _, conn := range c.conns {
		adj[conn.fromModule] = append(adj[conn.fromModule], conn.toModule)
		indeg[conn.toModule]++
	}
	// Kahn's algorithm with deterministic tie-breaking on insertion order.
	pos := make(map[string]int, len(c.order))
	for i, n := range c.order {
		pos[n] = i
	}
	var ready []string
	for name, d := range indeg {
		if d == 0 {
			ready = append(ready, name)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return pos[ready[i]] < pos[ready[j]] })

	var out []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		for _, m := range adj[n] {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
				sort.Slice(ready, func(i, j int) bool { return pos[ready[i]] < pos[ready[j]] })
			}
		}
	}
	if len(out) != len(c.nodes) {
		return nil, fmt.Errorf("covise: module network has a cycle")
	}
	return out, nil
}

// ExecStats reports what one Execute wave did.
type ExecStats struct {
	// Executed lists modules that ran (dirty or fed by a module that ran).
	Executed []string
	// Skipped lists modules whose cached outputs were reused.
	Skipped []string
}

// Execute runs one wave: every dirty module, plus everything downstream of a
// module that ran, in topological order. Clean modules keep their cached
// outputs (COVISE's demand-driven pipeline semantics). Inter-host input
// resolution goes through the request brokers, counting transfer bytes.
func (c *Controller) Execute() (*ExecStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	order, err := c.topoOrder()
	if err != nil {
		return nil, err
	}

	ran := make(map[string]bool)
	stats := &ExecStats{}
	for _, name := range order {
		n := c.nodes[name]

		// A module runs if dirty or if any producer feeding it ran.
		need := n.dirty
		if !need {
			for _, conn := range c.conns {
				if conn.toModule == name && ran[conn.fromModule] {
					need = true
					break
				}
			}
		}
		if !need {
			stats.Skipped = append(stats.Skipped, name)
			continue
		}

		ctx := &ExecCtx{
			inputs:  make(map[string]*DataObject),
			params:  n.params,
			outputs: make(map[string]*DataObject),
		}
		for _, conn := range c.conns {
			if conn.toModule != name {
				continue
			}
			src := c.nodes[conn.fromModule]
			objName, ok := src.outputs[conn.fromPort]
			if !ok {
				return nil, fmt.Errorf("covise: %s:%s has no output for %s", conn.fromModule, conn.fromPort, name)
			}
			obj, err := n.host.importFrom(src.host, objName)
			if err != nil {
				return nil, err
			}
			ctx.inputs[conn.toPort] = obj
		}

		if err := n.module.Execute(ctx); err != nil {
			return nil, fmt.Errorf("covise: module %s: %w", name, err)
		}
		for port, obj := range ctx.outputs {
			obj.Name = uniqueName(name, port)
			if err := n.host.put(obj); err != nil {
				return nil, err
			}
			n.outputs[port] = obj.Name
		}
		n.dirty = false
		ran[name] = true
		stats.Executed = append(stats.Executed, name)
		c.execsTotal++
	}
	c.execWaves++

	// Garbage-collect superseded objects per host.
	keep := make(map[string]bool)
	for _, n := range c.nodes {
		for _, objName := range n.outputs {
			keep[objName] = true
		}
	}
	hosts := make(map[*Host]bool)
	for _, n := range c.nodes {
		hosts[n.host] = true
	}
	for h := range hosts {
		h.gc(keep)
	}
	return stats, nil
}

// Output fetches a module's last output object.
func (c *Controller) Output(module, port string) (*DataObject, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[module]
	if !ok {
		return nil, fmt.Errorf("covise: no module %q", module)
	}
	objName, ok := n.outputs[port]
	if !ok {
		return nil, fmt.Errorf("covise: %s:%s has not produced output", module, port)
	}
	obj, ok := n.host.get(objName)
	if !ok {
		return nil, fmt.Errorf("covise: object %q vanished from %s", objName, n.host.Name())
	}
	return obj, nil
}

// Waves reports the number of Execute calls.
func (c *Controller) Waves() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.execWaves
}

// ModuleExecutions reports total module runs across all waves.
func (c *Controller) ModuleExecutions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.execsTotal
}
