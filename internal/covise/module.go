package covise

import (
	"fmt"

	"repro/internal/render"
	"repro/internal/viz"
)

// ExecCtx is what a module sees during one execution: its resolved inputs,
// its parameters, and an output sink.
type ExecCtx struct {
	inputs  map[string]*DataObject
	params  map[string]float64
	outputs map[string]*DataObject
}

// Input returns the object connected to an input port.
func (c *ExecCtx) Input(port string) (*DataObject, error) {
	obj, ok := c.inputs[port]
	if !ok {
		return nil, fmt.Errorf("covise: input port %q not connected", port)
	}
	return obj, nil
}

// Param returns a parameter value (0 if unset).
func (c *ExecCtx) Param(name string) float64 { return c.params[name] }

// Output publishes an object on an output port; the controller names it.
func (c *ExecCtx) Output(port string, obj *DataObject) { c.outputs[port] = obj }

// Module is one processing step in a map: "distributed applications can be
// built by combining modules (modeled as processes) from different
// application categories on different hosts to form module networks".
type Module interface {
	// TypeName identifies the module type in the map editor.
	TypeName() string
	// Execute computes outputs from inputs and parameters.
	Execute(ctx *ExecCtx) error
}

// ---- built-in module library ----

// FieldSource produces a scalar field obtained from a provider (typically a
// running simulation's latest output).
type FieldSource struct {
	Provide func() *viz.ScalarField
}

// TypeName implements Module.
func (m *FieldSource) TypeName() string { return "FieldSource" }

// Execute implements Module. Output port "field".
func (m *FieldSource) Execute(ctx *ExecCtx) error {
	f := m.Provide()
	if f == nil {
		return fmt.Errorf("covise: FieldSource provider returned nil")
	}
	ctx.Output("field", &DataObject{Kind: KindField, Field: f})
	return nil
}

// CuttingPlane slices a field into coloured geometry. Params: "axis"
// (0/1/2), "index". Input "field", output "geometry".
type CuttingPlane struct{}

// TypeName implements Module.
func (m *CuttingPlane) TypeName() string { return "CuttingPlane" }

// Execute implements Module.
func (m *CuttingPlane) Execute(ctx *ExecCtx) error {
	in, err := ctx.Input("field")
	if err != nil {
		return err
	}
	if in.Kind != KindField {
		return fmt.Errorf("covise: CuttingPlane needs a field, got kind %d", in.Kind)
	}
	axis := viz.Axis(int(ctx.Param("axis")))
	index := int(ctx.Param("index"))
	meshes := viz.CutPlane(in.Field, axis, index, nil)
	ctx.Output("geometry", &DataObject{Kind: KindGeometry, Scene: &render.Scene{Meshes: meshes}})
	return nil
}

// IsoSurface extracts a level set. Param "iso"; input "field", output
// "geometry".
type IsoSurface struct{}

// TypeName implements Module.
func (m *IsoSurface) TypeName() string { return "IsoSurface" }

// Execute implements Module.
func (m *IsoSurface) Execute(ctx *ExecCtx) error {
	in, err := ctx.Input("field")
	if err != nil {
		return err
	}
	if in.Kind != KindField {
		return fmt.Errorf("covise: IsoSurface needs a field, got kind %d", in.Kind)
	}
	mesh := viz.Isosurface(in.Field, ctx.Param("iso"), render.Blue)
	ctx.Output("geometry", &DataObject{Kind: KindGeometry, Scene: &render.Scene{Meshes: []*render.Mesh{mesh}}})
	return nil
}

// Renderer rasterises geometry: "at the end of such networks the rendering
// step performs the final visualization". Params: camera position
// "eyeX/eyeY/eyeZ" and "fov"; input "geometry", outputs "image" and
// "checksum" (scalar, for cross-site view comparison).
type Renderer struct {
	Width, Height int
	// LookAt is the fixed view target (scene dependent).
	LookAt render.Vec3
}

// TypeName implements Module.
func (m *Renderer) TypeName() string { return "Renderer" }

// Execute implements Module.
func (m *Renderer) Execute(ctx *ExecCtx) error {
	in, err := ctx.Input("geometry")
	if err != nil {
		return err
	}
	if in.Kind != KindGeometry {
		return fmt.Errorf("covise: Renderer needs geometry, got kind %d", in.Kind)
	}
	w, h := m.Width, m.Height
	if w == 0 {
		w, h = 160, 120
	}
	fov := ctx.Param("fov")
	if fov == 0 {
		fov = 0.7854
	}
	cam := render.Camera{
		Eye:    render.Vec3{X: ctx.Param("eyeX"), Y: ctx.Param("eyeY"), Z: ctx.Param("eyeZ")},
		Center: m.LookAt,
		Up:     render.Vec3{Y: 1},
		FovY:   fov,
		Near:   0.1, Far: 1000,
	}
	fb := render.NewFramebuffer(w, h)
	render.Render(fb, cam, in.Scene)
	ctx.Output("image", &DataObject{Kind: KindImage, Image: fb})
	ctx.Output("checksum", &DataObject{Kind: KindScalar, Scalar: float64(fb.Checksum())})
	return nil
}

// Probe samples a field at a grid point. Params "i","j","k"; input "field",
// output "value".
type Probe struct{}

// TypeName implements Module.
func (m *Probe) TypeName() string { return "Probe" }

// Execute implements Module.
func (m *Probe) Execute(ctx *ExecCtx) error {
	in, err := ctx.Input("field")
	if err != nil {
		return err
	}
	if in.Kind != KindField {
		return fmt.Errorf("covise: Probe needs a field, got kind %d", in.Kind)
	}
	f := in.Field
	clamp := func(v, n int) int {
		if v < 0 {
			return 0
		}
		if v >= n {
			return n - 1
		}
		return v
	}
	i := clamp(int(ctx.Param("i")), f.Nx)
	j := clamp(int(ctx.Param("j")), f.Ny)
	k := clamp(int(ctx.Param("k")), f.Nz)
	ctx.Output("value", &DataObject{Kind: KindScalar, Scalar: f.At(i, j, k)})
	return nil
}
