package covise

import (
	"fmt"
	"sync"
)

// Site is one participant in a collaborative session: a host running its own
// replica of the module network. "In a collaborative session all partners
// see the same screen representations at the same time on their local
// workstation" — achieved by executing the pipeline locally everywhere and
// exchanging only synchronisation messages.
type Site struct {
	Name       string
	Host       *Host
	Controller *Controller
}

// PipelineBuilder constructs one site's replica of the shared map.
type PipelineBuilder func(host *Host) (*Controller, error)

// CollabSession replicates a pipeline across sites and keeps parameters
// synchronised. One site at a time is the active steerer; the others watch
// but stay synchronised ("actively steering the exploration process or
// passively watching but participating in the discussion", section 4.3).
type CollabSession struct {
	mu     sync.Mutex
	sites  []*Site
	master string

	// syncBytes counts parameter-synchronisation traffic: the only data
	// that crosses the network in this collaboration mode.
	syncBytes uint64
	syncMsgs  uint64
}

// NewCollabSession returns an empty session.
func NewCollabSession() *CollabSession {
	return &CollabSession{}
}

// AddSite joins a new participant, building its pipeline replica. The first
// site becomes the active steerer.
func (s *CollabSession) AddSite(name string, build PipelineBuilder) (*Site, error) {
	host := NewHost(name)
	ctrl, err := build(host)
	if err != nil {
		return nil, err
	}
	site := &Site{Name: name, Host: host, Controller: ctrl}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, existing := range s.sites {
		if existing.Name == name {
			return nil, fmt.Errorf("covise: site %q already in session", name)
		}
	}
	s.sites = append(s.sites, site)
	if s.master == "" {
		s.master = name
	}
	return site, nil
}

// Site returns a participant by name.
func (s *CollabSession) Site(name string) (*Site, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, site := range s.sites {
		if site.Name == name {
			return site, nil
		}
	}
	return nil, fmt.Errorf("covise: no site %q", name)
}

// Sites returns the participant names in join order.
func (s *CollabSession) Sites() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.sites))
	for i, site := range s.sites {
		out[i] = site.Name
	}
	return out
}

// Master returns the active steerer.
func (s *CollabSession) Master() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.master
}

// SetMaster changes roles.
func (s *CollabSession) SetMaster(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, site := range s.sites {
		if site.Name == name {
			s.master = name
			return nil
		}
	}
	return fmt.Errorf("covise: no site %q", name)
}

// SetParam steers a parameter from a site. Only the active steerer may; the
// change is synchronised to every replica and each site re-executes its own
// pipeline locally. Returns the per-wave execution stats of the steering
// site.
func (s *CollabSession) SetParam(from, module, param string, value float64) (*ExecStats, error) {
	s.mu.Lock()
	if from != s.master {
		s.mu.Unlock()
		return nil, fmt.Errorf("covise: site %q is not the active steerer (%q is)", from, s.master)
	}
	sites := append([]*Site(nil), s.sites...)
	// One sync message per remote site: module + param + 8-byte value.
	msgSize := uint64(len(module) + len(param) + 8)
	s.syncBytes += msgSize * uint64(len(sites)-1)
	s.syncMsgs += uint64(len(sites) - 1)
	s.mu.Unlock()

	var firstStats *ExecStats
	var firstErr error
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, site := range sites {
		wg.Add(1)
		go func(site *Site) {
			defer wg.Done()
			if err := site.Controller.SetParam(module, param, value); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			stats, err := site.Controller.Execute()
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if site.Name == from {
				firstStats = stats
			}
			mu.Unlock()
		}(site)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return firstStats, nil
}

// ExecuteAll runs one wave on every replica (e.g. after marking sources
// dirty when the simulation advanced).
func (s *CollabSession) ExecuteAll() error {
	s.mu.Lock()
	sites := append([]*Site(nil), s.sites...)
	s.mu.Unlock()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, site := range sites {
		wg.Add(1)
		go func(site *Site) {
			defer wg.Done()
			if _, err := site.Controller.Execute(); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(site)
	}
	wg.Wait()
	return firstErr
}

// MarkDirtyAll marks a module dirty on every replica.
func (s *CollabSession) MarkDirtyAll(module string) error {
	s.mu.Lock()
	sites := append([]*Site(nil), s.sites...)
	s.mu.Unlock()
	for _, site := range sites {
		if err := site.Controller.MarkDirty(module); err != nil {
			return err
		}
	}
	return nil
}

// Checksums gathers a scalar output (typically the renderer's "checksum")
// from every site: equal values mean every participant displays identical
// content, the synchronisation requirement of section 4.2.
func (s *CollabSession) Checksums(module, port string) (map[string]float64, error) {
	s.mu.Lock()
	sites := append([]*Site(nil), s.sites...)
	s.mu.Unlock()
	out := make(map[string]float64, len(sites))
	for _, site := range sites {
		obj, err := site.Controller.Output(module, port)
		if err != nil {
			return nil, fmt.Errorf("covise: site %s: %w", site.Name, err)
		}
		if obj.Kind != KindScalar {
			return nil, fmt.Errorf("covise: %s:%s is not a scalar", module, port)
		}
		out[site.Name] = obj.Scalar
	}
	return out, nil
}

// Converged reports whether every site displays identical content.
func (s *CollabSession) Converged(module, port string) (bool, error) {
	sums, err := s.Checksums(module, port)
	if err != nil {
		return false, err
	}
	var first float64
	started := false
	for _, v := range sums {
		if !started {
			first, started = v, true
			continue
		}
		if v != first {
			return false, nil
		}
	}
	return true, nil
}

// SyncBytes reports total parameter-synchronisation traffic.
func (s *CollabSession) SyncBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncBytes
}

// SyncMessages reports the number of sync messages sent.
func (s *CollabSession) SyncMessages() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncMsgs
}
