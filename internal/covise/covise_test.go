package covise

import (
	"strings"
	"testing"

	"repro/internal/viz"
)

// rampField returns a deterministic test field.
func rampField() *viz.ScalarField {
	f := viz.NewScalarField(10, 10, 10)
	f.Fill(func(i, j, k int) float64 { return float64(i + 2*j + 3*k) })
	return f
}

// buildPipeline wires source → cutplane → renderer on one host.
func buildPipeline(host *Host, provide func() *viz.ScalarField) (*Controller, error) {
	c := NewController()
	if err := c.AddModule("source", host, &FieldSource{Provide: provide}); err != nil {
		return nil, err
	}
	if err := c.AddModule("cut", host, &CuttingPlane{}); err != nil {
		return nil, err
	}
	if err := c.AddModule("render", host, &Renderer{Width: 96, Height: 72, LookAt: renderCenter()}); err != nil {
		return nil, err
	}
	if err := c.Connect("source", "field", "cut", "field"); err != nil {
		return nil, err
	}
	if err := c.Connect("cut", "geometry", "render", "geometry"); err != nil {
		return nil, err
	}
	c.SetParam("cut", "axis", 2)
	c.SetParam("cut", "index", 4)
	c.SetParam("render", "eyeX", 20)
	c.SetParam("render", "eyeY", 15)
	c.SetParam("render", "eyeZ", 25)
	return c, nil
}

func renderCenter() (v struct{ X, Y, Z float64 }) {
	v.X, v.Y, v.Z = 5, 5, 5
	return
}

func TestPipelineExecutes(t *testing.T) {
	host := NewHost("hlrs")
	c, err := buildPipeline(host, rampField)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Executed) != 3 {
		t.Fatalf("executed = %v", stats.Executed)
	}
	img, err := c.Output("render", "image")
	if err != nil {
		t.Fatal(err)
	}
	if img.Kind != KindImage || img.Image.W != 96 {
		t.Fatalf("image output wrong: %+v", img)
	}
	sum, err := c.Output("render", "checksum")
	if err != nil || sum.Kind != KindScalar {
		t.Fatalf("checksum output: %v %v", sum, err)
	}
}

func TestDemandDrivenReexecution(t *testing.T) {
	host := NewHost("h")
	c, _ := buildPipeline(host, rampField)
	c.Execute()

	// Nothing dirty: nothing runs.
	stats, _ := c.Execute()
	if len(stats.Executed) != 0 || len(stats.Skipped) != 3 {
		t.Fatalf("clean wave ran modules: %+v", stats)
	}

	// Changing the cut index re-runs cut and render but not the source.
	c.SetParam("cut", "index", 7)
	stats, _ = c.Execute()
	if strings.Join(stats.Executed, ",") != "cut,render" {
		t.Fatalf("executed = %v, want cut,render", stats.Executed)
	}
	if len(stats.Skipped) != 1 || stats.Skipped[0] != "source" {
		t.Fatalf("skipped = %v", stats.Skipped)
	}

	// Same value again: no-op.
	c.SetParam("cut", "index", 7)
	stats, _ = c.Execute()
	if len(stats.Executed) != 0 {
		t.Fatalf("idempotent param change re-ran %v", stats.Executed)
	}
}

func TestParamChangeChangesOutput(t *testing.T) {
	host := NewHost("h")
	c, _ := buildPipeline(host, rampField)
	c.Execute()
	before, _ := c.Output("render", "checksum")
	c.SetParam("cut", "index", 8)
	c.Execute()
	after, _ := c.Output("render", "checksum")
	if before.Scalar == after.Scalar {
		t.Fatal("moving the cutting plane did not change the rendered image")
	}
}

func TestCycleDetection(t *testing.T) {
	host := NewHost("h")
	c := NewController()
	c.AddModule("a", host, &CuttingPlane{})
	c.AddModule("b", host, &IsoSurface{})
	c.Connect("a", "geometry", "b", "field")
	c.Connect("b", "geometry", "a", "field")
	if _, err := c.Execute(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestDuplicateModuleAndConnectionValidation(t *testing.T) {
	host := NewHost("h")
	c := NewController()
	if err := c.AddModule("m", host, &CuttingPlane{}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddModule("m", host, &CuttingPlane{}); err == nil {
		t.Fatal("duplicate module accepted")
	}
	if err := c.Connect("m", "geometry", "ghost", "field"); err == nil {
		t.Fatal("connection to unknown module accepted")
	}
	c.AddModule("n", host, &IsoSurface{})
	if err := c.Connect("m", "geometry", "n", "field"); err != nil {
		t.Fatal(err)
	}
	if err := c.Connect("m", "geometry", "n", "field"); err == nil {
		t.Fatal("double-connected input accepted")
	}
}

func TestMissingInputFails(t *testing.T) {
	host := NewHost("h")
	c := NewController()
	c.AddModule("cut", host, &CuttingPlane{})
	if _, err := c.Execute(); err == nil {
		t.Fatal("unconnected input executed")
	}
}

func TestCrossHostTransferCountsBytes(t *testing.T) {
	// Source on the supercomputer, post-processing + rendering on the
	// workstation: the distributed deployment of section 4.1.
	super := NewHost("supercomputer")
	work := NewHost("workstation")
	c := NewController()
	c.AddModule("source", super, &FieldSource{Provide: rampField})
	c.AddModule("cut", work, &CuttingPlane{})
	c.AddModule("render", work, &Renderer{LookAt: renderCenter()})
	c.Connect("source", "field", "cut", "field")
	c.Connect("cut", "geometry", "render", "geometry")
	c.SetParam("cut", "axis", 2)
	c.SetParam("cut", "index", 3)
	c.SetParam("render", "eyeX", 20)
	c.SetParam("render", "eyeY", 15)
	c.SetParam("render", "eyeZ", 25)
	if _, err := c.Execute(); err != nil {
		t.Fatal(err)
	}
	wantField := uint64(10 * 10 * 10 * 8)
	if got := work.BytesIn(); got != wantField {
		t.Fatalf("workstation imported %d bytes, want %d (the field)", got, wantField)
	}
	if super.BytesIn() != 0 {
		t.Fatal("supercomputer should import nothing")
	}

	// Re-running only the local part of the pipeline moves no new data.
	c.SetParam("render", "eyeX", 21)
	c.Execute()
	if got := work.BytesIn(); got != wantField {
		t.Fatalf("local re-render moved data: %d", got)
	}
}

func TestSharedDataSpaceGC(t *testing.T) {
	host := NewHost("h")
	c, _ := buildPipeline(host, rampField)
	for i := 0; i < 10; i++ {
		c.SetParam("cut", "index", float64(i%9))
		if _, err := c.Execute(); err != nil {
			t.Fatal(err)
		}
	}
	// Live objects: one per output port (source 1, cut 1, render 2).
	if n := host.ObjectCount(); n > 4 {
		t.Fatalf("SDS grew to %d objects: GC broken", n)
	}
}

func TestIsoSurfaceModule(t *testing.T) {
	host := NewHost("h")
	c := NewController()
	c.AddModule("source", host, &FieldSource{Provide: rampField})
	c.AddModule("iso", host, &IsoSurface{})
	c.Connect("source", "field", "iso", "field")
	c.SetParam("iso", "iso", 20)
	if _, err := c.Execute(); err != nil {
		t.Fatal(err)
	}
	geo, err := c.Output("iso", "geometry")
	if err != nil {
		t.Fatal(err)
	}
	if geo.Scene.TriangleCount() == 0 {
		t.Fatal("isosurface empty")
	}
}

func TestProbeModule(t *testing.T) {
	host := NewHost("h")
	c := NewController()
	c.AddModule("source", host, &FieldSource{Provide: rampField})
	c.AddModule("probe", host, &Probe{})
	c.Connect("source", "field", "probe", "field")
	c.SetParam("probe", "i", 1)
	c.SetParam("probe", "j", 2)
	c.SetParam("probe", "k", 3)
	if _, err := c.Execute(); err != nil {
		t.Fatal(err)
	}
	v, _ := c.Output("probe", "value")
	if v.Scalar != 1+2*2+3*3 {
		t.Fatalf("probe = %v", v.Scalar)
	}
}

// ---- collaborative session ----

func newCollab(t *testing.T, sites ...string) *CollabSession {
	t.Helper()
	s := NewCollabSession()
	for _, name := range sites {
		if _, err := s.AddSite(name, func(h *Host) (*Controller, error) {
			return buildPipeline(h, rampField)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.ExecuteAll(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCollabSitesConverge(t *testing.T) {
	s := newCollab(t, "hlrs", "sandia", "daimler")
	ok, err := s.Converged("render", "checksum")
	if err != nil || !ok {
		t.Fatalf("initial convergence failed: %v %v", ok, err)
	}
	if _, err := s.SetParam("hlrs", "cut", "index", 6); err != nil {
		t.Fatal(err)
	}
	ok, err = s.Converged("render", "checksum")
	if err != nil || !ok {
		t.Fatalf("post-steer convergence failed: %v %v", ok, err)
	}
}

func TestCollabOnlyMasterSteers(t *testing.T) {
	s := newCollab(t, "hlrs", "sandia")
	if _, err := s.SetParam("sandia", "cut", "index", 6); err == nil {
		t.Fatal("passive site steered")
	}
	if err := s.SetMaster("sandia"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetParam("sandia", "cut", "index", 6); err != nil {
		t.Fatalf("role change ineffective: %v", err)
	}
	if _, err := s.SetParam("hlrs", "cut", "index", 2); err == nil {
		t.Fatal("old master still steering")
	}
}

func TestCollabSyncBytesTiny(t *testing.T) {
	// The section 4.6 scaling claim: only parameters cross the network.
	s := newCollab(t, "a", "b", "c", "d")
	before := s.SyncBytes()
	if _, err := s.SetParam("a", "cut", "index", 5); err != nil {
		t.Fatal(err)
	}
	delta := s.SyncBytes() - before
	// 3 remote sites × (3+5+8) bytes.
	if delta != 3*(3+5+8) {
		t.Fatalf("sync bytes = %d", delta)
	}
	// Versus the geometry that would have been shipped: orders of magnitude.
	site0Geo, _ := s.sites[0].Controller.Output("cut", "geometry")
	if int(delta)*100 > site0Geo.ByteSize() {
		t.Fatalf("sync %d bytes not ≪ geometry %d bytes", delta, site0Geo.ByteSize())
	}
}

func TestCollabDuplicateSite(t *testing.T) {
	s := newCollab(t, "a")
	if _, err := s.AddSite("a", func(h *Host) (*Controller, error) {
		return buildPipeline(h, rampField)
	}); err == nil {
		t.Fatal("duplicate site accepted")
	}
	if err := s.SetMaster("ghost"); err == nil {
		t.Fatal("unknown master accepted")
	}
}

func TestCollabSimulationAdvance(t *testing.T) {
	// When the simulation advances, sources are marked dirty everywhere and
	// all sites re-converge on the new content.
	step := 0
	provide := func() *viz.ScalarField {
		f := viz.NewScalarField(8, 8, 8)
		s := step
		// The colormap normalises min/max, so the change must alter the
		// field's shape, not just its offset.
		f.Fill(func(i, j, k int) float64 { return float64(i+j+k) + float64(s*i*i) })
		return f
	}
	s := NewCollabSession()
	for _, name := range []string{"x", "y"} {
		if _, err := s.AddSite(name, func(h *Host) (*Controller, error) {
			return buildPipeline(h, provide)
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.ExecuteAll()
	sums1, _ := s.Checksums("render", "checksum")

	step = 5
	s.MarkDirtyAll("source")
	s.ExecuteAll()
	sums2, _ := s.Checksums("render", "checksum")
	if sums1["x"] == sums2["x"] {
		t.Fatal("advancing the simulation did not change the view")
	}
	if sums2["x"] != sums2["y"] {
		t.Fatal("sites diverged after simulation advance")
	}
}
