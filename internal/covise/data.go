// Package covise reimplements the COVISE collaborative visualization and
// simulation environment of the paper's section 4: dataflow module networks
// built in a map editor, a central controller holding "the only knowledge
// about the whole application topology", per-host request brokers managing a
// shared data space of immutable, system-wide uniquely named data objects,
// and collaborative sessions in which every site runs the same pipeline
// locally and only parameter/synchronisation messages cross the network —
// the design that makes "the collaboration speed not degrade with the volume
// of displayed geometric data" (section 4.6).
package covise

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/render"
	"repro/internal/viz"
)

// Kind classifies a data object's payload.
type Kind uint8

// Data object kinds.
const (
	KindField    Kind = iota + 1 // 3D scalar field
	KindGeometry                 // triangle meshes + lines + points
	KindImage                    // rendered framebuffer
	KindScalar                   // single value
)

// DataObject is one immutable object in the shared data space. "Scientific
// data is handled as data objects which have attributes such as names and
// lifetime"; modules exchange objects by name, never by mutation.
type DataObject struct {
	Name string
	Kind Kind

	Field  *viz.ScalarField
	Scene  *render.Scene
	Image  *render.Framebuffer
	Scalar float64
}

// ByteSize estimates the payload size: the cost of shipping the object to
// another host.
func (d *DataObject) ByteSize() int {
	switch d.Kind {
	case KindField:
		return len(d.Field.Data) * 8
	case KindGeometry:
		return d.Scene.GeometryBytes()
	case KindImage:
		return len(d.Image.Pix)
	case KindScalar:
		return 8
	default:
		return 0
	}
}

// objSeq generates system-wide unique data object names.
var objSeq atomic.Uint64

// uniqueName mints a fresh object name: "the underlying data management
// takes care of assigning system-wide unique names".
func uniqueName(module, port string) string {
	return fmt.Sprintf("obj_%s_%s_%d", module, port, objSeq.Add(1))
}

// Host is one participating machine: its request broker and shared data
// space. "Request brokers on each participating host take care of data
// management, efficient data transfer and conversion between different
// platforms"; on one host the SDS is shared memory (here: a map), between
// hosts objects are copied and the traffic is counted.
type Host struct {
	name string

	mu  sync.Mutex
	sds map[string]*DataObject
	// bytesIn counts data copied in from other hosts.
	bytesIn uint64
}

// NewHost creates a host with an empty shared data space.
func NewHost(name string) *Host {
	return &Host{name: name, sds: make(map[string]*DataObject)}
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// put stores an object in the local SDS.
func (h *Host) put(obj *DataObject) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.sds[obj.Name]; dup {
		return fmt.Errorf("covise: duplicate data object %q on %s", obj.Name, h.name)
	}
	h.sds[obj.Name] = obj
	return nil
}

// get fetches an object from the local SDS.
func (h *Host) get(name string) (*DataObject, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	obj, ok := h.sds[name]
	return obj, ok
}

// importFrom copies an object from another host's SDS, counting the bytes
// that crossed the network. Same-host access is free (shared memory).
func (h *Host) importFrom(src *Host, name string) (*DataObject, error) {
	if src == h {
		obj, ok := h.get(name)
		if !ok {
			return nil, fmt.Errorf("covise: no object %q on %s", name, h.name)
		}
		return obj, nil
	}
	obj, ok := src.get(name)
	if !ok {
		return nil, fmt.Errorf("covise: no object %q on %s", name, src.name)
	}
	h.mu.Lock()
	h.bytesIn += uint64(obj.ByteSize())
	if _, dup := h.sds[name]; !dup {
		h.sds[name] = obj
	}
	h.mu.Unlock()
	return obj, nil
}

// BytesIn reports the data volume imported from other hosts.
func (h *Host) BytesIn() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bytesIn
}

// ObjectCount reports the number of objects in the SDS.
func (h *Host) ObjectCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.sds)
}

// gc removes objects not in the keep set (the controller calls this between
// execution waves so the SDS does not grow without bound).
func (h *Host) gc(keep map[string]bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for name := range h.sds {
		if !keep[name] {
			delete(h.sds, name)
		}
	}
}
