package visit

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hub"
)

// TestBridgeSimOnHub runs a VISIT-instrumented simulation against the
// bridge: steering flows hub client → session registry → sim recv, and
// diagnostics flow sim send → session samples → hub client.
func TestBridgeSimOnHub(t *testing.T) {
	hb := hub.New(hub.Config{})
	defer hb.Close()
	session, err := hb.CreateSession(core.SessionConfig{Name: "visit-sim", AppName: "visit"})
	if err != nil {
		t.Fatal(err)
	}

	bridge := NewBridge(ServerConfig{}, session)
	defer bridge.Close()
	if err := bridge.BindParams(20, []FloatSpec{
		{Name: "dt", Initial: 0.01, Min: 0, Max: 1, Help: "timestep"},
		{Name: "viscosity", Initial: 1, Min: 0, Max: 10, Help: "viscosity"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := bridge.BindChannel(10, "energy"); err != nil {
		t.Fatal(err)
	}

	visitL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer visitL.Close()
	go bridge.Serve(visitL)

	hubL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hubL.Close()
	go hb.Serve(hubL)

	// The simulation side: plain VISIT, oblivious to the hub behind it.
	sim := NewSim(TCPDialer(visitL.Addr().String()), "")
	defer sim.Close()
	m, err := sim.Recv(20, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := m.AsFloat64s()
	if err != nil || len(vals) != 2 || vals[0] != 0.01 || vals[1] != 1 {
		t.Fatalf("initial params = %v (%v), want [0.01 1]", vals, err)
	}

	// A steering client on the hub changes dt; the sim's next loop-boundary
	// recv sees it.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	cli, err := core.Dial(ctx, hubL.Addr().String(), core.AttachOptions{
		Name: "steerer", Session: "visit-sim", WantMaster: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.SetParamContext(ctx, "dt", 0.5); err != nil {
		t.Fatal(err)
	}
	m, err = sim.Recv(20, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if vals, _ = m.AsFloat64s(); vals[0] != 0.5 {
		t.Fatalf("steered dt = %v, want 0.5", vals[0])
	}

	// Diagnostics pushed by the sim arrive as session samples.
	if err := sim.SendFloat64s(10, []float64{42.5}, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-cli.Samples():
		if got := s.Channels["energy"].Value(); got != 42.5 {
			t.Fatalf("energy sample = %v, want 42.5", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pushed diagnostics never reached the steering client")
	}

	// A stop reaches the sim on its next exchange.
	if err := cli.StopContext(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Recv(20, 2*time.Second); err == nil ||
		!strings.Contains(err.Error(), "stopped") {
		t.Fatalf("recv after stop = %v, want session-stopped error", err)
	}
}
