package visit

import (
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// Dialer produces a connection to the visualization server. The simulation
// side depends on nothing else, keeping it portable to "classic
// supercomputers" in the paper's terms — and to shaped netsim links in the
// experiments.
type Dialer func() (net.Conn, error)

// TCPDialer returns a Dialer for a TCP address.
func TCPDialer(addr string) Dialer {
	return func() (net.Conn, error) { return net.Dial("tcp", addr) }
}

// Sim is the simulation end of VISIT. Every method takes an explicit
// timeout and is guaranteed to return (with success or an error) by that
// deadline; a failed or slow visualization can cost the simulation at most
// the timeout per call, never a stall. Sim is safe for use from a single
// simulation goroutine (the VISIT model); guard it externally if several
// goroutines share one handle.
type Sim struct {
	dial     Dialer
	password string

	mu      sync.Mutex
	conn    net.Conn
	enc     *wire.Encoder
	dec     *wire.Decoder
	stats   SimStats
	closed  bool
	lastErr error
}

// SimStats counts simulation-side activity, including how often a slow or
// dead visualization cost the simulation a timeout.
type SimStats struct {
	Dials      uint64
	Sends      uint64
	Recvs      uint64
	Timeouts   uint64
	Failures   uint64
	Reconnects uint64
}

// NewSim returns a simulation handle; no connection is made until the first
// operation (connection setup is itself simulation-initiated).
func NewSim(dial Dialer, password string) *Sim {
	return &Sim{dial: dial, password: password}
}

// Stats returns a copy of the counters.
func (s *Sim) Stats() SimStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// LastErr returns the most recent operation error (nil after a success).
func (s *Sim) LastErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// ensureConn dials and authenticates if necessary. Caller holds mu.
func (s *Sim) ensureConn(deadline time.Time) error {
	if s.closed {
		return ErrClosed
	}
	if s.conn != nil {
		return nil
	}
	conn, err := s.dial()
	if err != nil {
		return err
	}
	s.stats.Dials++
	conn.SetDeadline(deadline)
	enc := wire.NewEncoder(conn)
	dec := wire.NewDecoder(conn)
	if err := enc.String(tagAuth, s.password); err != nil {
		conn.Close()
		return err
	}
	reply, err := dec.Next()
	if err != nil {
		conn.Close()
		return err
	}
	if reply.Header.Tag == tagErr {
		conn.Close()
		return ErrAuth
	}
	conn.SetDeadline(time.Time{})
	s.conn, s.enc, s.dec = conn, enc, dec
	return nil
}

// dropConn closes the connection after a failure so the next operation
// starts clean (a half-finished exchange would corrupt framing).
func (s *Sim) dropConn() {
	if s.conn != nil {
		s.conn.Close()
		s.conn, s.enc, s.dec = nil, nil, nil
		s.stats.Reconnects++
	}
}

// classify updates stats and lastErr for an operation result.
func (s *Sim) classify(err error) error {
	if err == nil {
		s.lastErr = nil
		return nil
	}
	s.lastErr = err
	if _, remote := err.(*remoteError); remote {
		// The exchange completed cleanly; the server just declined. Keep
		// the connection.
		s.stats.Failures++
		return err
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		s.stats.Timeouts++
		s.dropConn()
		return ErrTimeout
	}
	s.stats.Failures++
	s.dropConn()
	return err
}

// exchange runs fn with the connection deadline set, reconnecting first if
// needed.
func (s *Sim) exchange(timeout time.Duration, fn func() error) error {
	deadline := time.Now().Add(timeout)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureConn(deadline); err != nil {
		return s.classify(err)
	}
	s.conn.SetDeadline(deadline)
	defer func() {
		if s.conn != nil {
			s.conn.SetDeadline(time.Time{})
		}
	}()
	return s.classify(fn())
}

// readAck consumes an OK or error frame.
func (s *Sim) readAck() error {
	m, err := s.dec.Next()
	if err != nil {
		return err
	}
	if m.Header.Tag == tagErr {
		msg, _ := m.AsString()
		return &remoteError{msg: msg}
	}
	return nil
}

// Ping verifies connectivity within the timeout.
func (s *Sim) Ping(timeout time.Duration) error {
	return s.exchange(timeout, func() error {
		if err := s.enc.Int32s(tagOp, []int32{opPing, 0}); err != nil {
			return err
		}
		return s.readAck()
	})
}

// send pushes one pre-built message under the user tag.
func (s *Sim) send(tag uint32, timeout time.Duration, write func() error) error {
	if err := checkUserTag(tag); err != nil {
		return err
	}
	err := s.exchange(timeout, func() error {
		if err := s.enc.Int32s(tagOp, []int32{opSend, int32(tag)}); err != nil {
			return err
		}
		if err := write(); err != nil {
			return err
		}
		return s.readAck()
	})
	if err == nil {
		s.mu.Lock()
		s.stats.Sends++
		s.mu.Unlock()
	}
	return err
}

// SendFloat64s pushes a float64 array to the visualization.
func (s *Sim) SendFloat64s(tag uint32, v []float64, timeout time.Duration) error {
	return s.send(tag, timeout, func() error { return s.enc.Float64s(tag, v) })
}

// SendFloat32s pushes a float32 array (the server converts as needed).
func (s *Sim) SendFloat32s(tag uint32, v []float32, timeout time.Duration) error {
	return s.send(tag, timeout, func() error { return s.enc.Float32s(tag, v) })
}

// SendInt32s pushes an int32 array.
func (s *Sim) SendInt32s(tag uint32, v []int32, timeout time.Duration) error {
	return s.send(tag, timeout, func() error { return s.enc.Int32s(tag, v) })
}

// SendString pushes a string.
func (s *Sim) SendString(tag uint32, v string, timeout time.Duration) error {
	return s.send(tag, timeout, func() error { return s.enc.String(tag, v) })
}

// SendBytes pushes a raw byte blob.
func (s *Sim) SendBytes(tag uint32, v []byte, timeout time.Duration) error {
	return s.send(tag, timeout, func() error { return s.enc.Bytes(tag, v) })
}

// SendMessage pushes an already-decoded message under the given tag; the
// vbroker uses it to replay the simulation's traffic to each visualization.
func (s *Sim) SendMessage(tag uint32, m *wire.Message, timeout time.Duration) error {
	m.Header.Tag = tag
	return s.send(tag, timeout, func() error { return s.enc.Message(m) })
}

// Recv asks the visualization for the data registered under tag (typically
// updated steering parameters) and returns the reply message.
func (s *Sim) Recv(tag uint32, timeout time.Duration) (*wire.Message, error) {
	if err := checkUserTag(tag); err != nil {
		return nil, err
	}
	var reply *wire.Message
	err := s.exchange(timeout, func() error {
		if err := s.enc.Int32s(tagOp, []int32{opRecv, int32(tag)}); err != nil {
			return err
		}
		m, err := s.dec.Next()
		if err != nil {
			return err
		}
		if m.Header.Tag == tagErr {
			msg, _ := m.AsString()
			return &remoteError{msg: msg}
		}
		reply = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.stats.Recvs++
	s.mu.Unlock()
	return reply, nil
}

// Close releases the connection; further operations fail with ErrClosed.
func (s *Sim) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	return nil
}
