package visit

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// BrokerConfig configures a collaboration multiplexer.
type BrokerConfig struct {
	// Password authenticates the simulation to the broker.
	Password string
	// VizTimeout bounds each forwarded operation per visualization
	// (default 2s). A visualization slower than this loses the frame; it
	// never slows the simulation more than the broker's own ack.
	VizTimeout time.Duration
	// MaxFailures is the consecutive-failure count after which a
	// visualization is detached (default 3).
	MaxFailures int
}

// Broker is the vbroker of section 3.3: it stands between the simulation
// and any number of visualizations, fanning send-requests out to everyone
// ("ensuring that everyone views the same data") while directing
// receive-requests only to the master, "so that only that master is able to
// actively steer the application". The master role is movable.
type Broker struct {
	cfg    BrokerConfig
	server *Server

	mu     sync.Mutex
	vizs   map[string]*vizLink
	order  []string
	master string
	stats  BrokerStats
}

// vizLink is one attached visualization.
type vizLink struct {
	name     string
	sim      *Sim // the broker is a VISIT client towards each visualization
	failures int
}

// BrokerStats counts multiplexer activity.
type BrokerStats struct {
	SendsIn        uint64 // send ops received from the simulation
	SendsFanned    uint64 // per-viz forwarded sends
	SendFailures   uint64
	RecvsForwarded uint64
	RecvsNoMaster  uint64
	VizsDetached   uint64
}

// NewBroker returns a broker ready to accept the simulation connection.
func NewBroker(cfg BrokerConfig) *Broker {
	if cfg.VizTimeout <= 0 {
		cfg.VizTimeout = 2 * time.Second
	}
	if cfg.MaxFailures <= 0 {
		cfg.MaxFailures = 3
	}
	b := &Broker{
		cfg:  cfg,
		vizs: make(map[string]*vizLink),
	}
	b.server = NewServer(ServerConfig{Password: cfg.Password})
	b.server.HandleSendDefault(b.forwardSend)
	b.server.HandleRecvDefault(b.forwardRecv)
	return b
}

// AttachViz connects the broker to a visualization server. The first
// visualization attached becomes master.
func (b *Broker) AttachViz(name string, dial Dialer, password string) error {
	sim := NewSim(dial, password)
	if err := sim.Ping(b.cfg.VizTimeout); err != nil {
		sim.Close()
		return fmt.Errorf("visit: attach %q: %w", name, err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.vizs[name]; dup {
		sim.Close()
		return fmt.Errorf("visit: visualization %q already attached", name)
	}
	b.vizs[name] = &vizLink{name: name, sim: sim}
	b.order = append(b.order, name)
	if b.master == "" {
		b.master = name
	}
	return nil
}

// DetachViz removes a visualization; a detached master passes the role to
// the oldest remaining visualization.
func (b *Broker) DetachViz(name string) {
	b.mu.Lock()
	v, ok := b.vizs[name]
	if ok {
		b.removeLocked(v)
	}
	b.mu.Unlock()
}

// removeLocked removes v and repairs master. Caller holds mu.
func (b *Broker) removeLocked(v *vizLink) {
	delete(b.vizs, v.name)
	for i, n := range b.order {
		if n == v.name {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
	if b.master == v.name {
		b.master = ""
		if len(b.order) > 0 {
			b.master = b.order[0]
		}
	}
	b.stats.VizsDetached++
	v.sim.Close()
}

// SetMaster moves the steering role: "the master-role can be moved between
// the [visualizations] allowing for a coordinated cooperative steering".
func (b *Broker) SetMaster(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.vizs[name]; !ok {
		return fmt.Errorf("visit: no visualization %q", name)
	}
	b.master = name
	return nil
}

// Master returns the current master visualization name.
func (b *Broker) Master() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.master
}

// Vizs returns the attached visualization names in attach order.
func (b *Broker) Vizs() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.order...)
}

// Stats returns a copy of the counters.
func (b *Broker) Stats() BrokerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// forwardSend fans one pushed message out to all attached visualizations.
func (b *Broker) forwardSend(tag uint32, m *wire.Message) error {
	b.mu.Lock()
	b.stats.SendsIn++
	links := make([]*vizLink, 0, len(b.vizs))
	for _, name := range b.order {
		links = append(links, b.vizs[name])
	}
	b.mu.Unlock()

	for _, v := range links {
		err := v.sim.SendMessage(tag, m, b.cfg.VizTimeout)
		b.mu.Lock()
		if err != nil {
			b.stats.SendFailures++
			v.failures++
			if v.failures >= b.cfg.MaxFailures {
				b.removeLocked(v)
			}
		} else {
			v.failures = 0
			b.stats.SendsFanned++
		}
		b.mu.Unlock()
	}
	// The simulation's send succeeds as long as the broker accepted it;
	// individual visualization failures must not disturb the simulation.
	return nil
}

// forwardRecv directs a receive-request to the master visualization only.
func (b *Broker) forwardRecv(tag uint32) (*wire.Message, error) {
	b.mu.Lock()
	master := b.master
	v := b.vizs[master]
	b.mu.Unlock()
	if v == nil {
		b.mu.Lock()
		b.stats.RecvsNoMaster++
		b.mu.Unlock()
		return nil, ErrNoMaster
	}
	m, err := v.sim.Recv(tag, b.cfg.VizTimeout)
	b.mu.Lock()
	defer b.mu.Unlock()
	if err != nil {
		v.failures++
		if v.failures >= b.cfg.MaxFailures {
			b.removeLocked(v)
		}
		return nil, err
	}
	v.failures = 0
	b.stats.RecvsForwarded++
	return m, nil
}

// Serve accepts simulation connections on l (usually exactly one).
func (b *Broker) Serve(l net.Listener) error { return b.server.Serve(l) }

// ServeConn runs the simulation-facing protocol on one connection.
func (b *Broker) ServeConn(conn net.Conn) error { return b.server.ServeConn(conn) }

// Close shuts the broker and detaches all visualizations.
func (b *Broker) Close() {
	b.server.Close()
	b.mu.Lock()
	links := make([]*vizLink, 0, len(b.vizs))
	for _, v := range b.vizs {
		links = append(links, v)
	}
	b.vizs = make(map[string]*vizLink)
	b.order = nil
	b.mu.Unlock()
	for _, v := range links {
		v.sim.Close()
	}
}
