package visit

import (
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// SendHandler consumes a data message pushed by the simulation.
type SendHandler func(m *wire.Message) error

// RecvHandler produces the data message a simulation asked for (steering
// parameters, typically).
type RecvHandler func() (*wire.Message, error)

// ServerConfig configures a visualization-side server.
type ServerConfig struct {
	// Password is the clear-text connection password ("" disables auth,
	// as in a trusted testbed).
	Password string
	// IdleTimeout disconnects simulations silent for this long (0: never).
	IdleTimeout time.Duration
}

// Server is the visualization end of VISIT: it dispatches the simulation's
// send/receive requests to registered handlers.
type Server struct {
	cfg ServerConfig

	mu    sync.RWMutex
	sends map[uint32]SendHandler
	recvs map[uint32]RecvHandler
	// defaultSend/defaultRecv catch tags with no specific handler; the
	// vbroker uses them to forward arbitrary traffic.
	defaultSend func(tag uint32, m *wire.Message) error
	defaultRecv func(tag uint32) (*wire.Message, error)

	stats  ServerStats
	closed chan struct{}
	once   sync.Once
}

// ServerStats counts server activity.
type ServerStats struct {
	Connections uint64
	AuthFailed  uint64
	Sends       uint64
	Recvs       uint64
	Pings       uint64
	Errors      uint64
}

// NewServer returns a server with no handlers registered.
func NewServer(cfg ServerConfig) *Server {
	return &Server{
		cfg:    cfg,
		sends:  make(map[uint32]SendHandler),
		recvs:  make(map[uint32]RecvHandler),
		closed: make(chan struct{}),
	}
}

// HandleSend registers the consumer for data pushed with the given tag.
func (s *Server) HandleSend(tag uint32, h SendHandler) error {
	if err := checkUserTag(tag); err != nil {
		return err
	}
	s.mu.Lock()
	s.sends[tag] = h
	s.mu.Unlock()
	return nil
}

// HandleRecv registers the producer for data requested with the given tag.
func (s *Server) HandleRecv(tag uint32, h RecvHandler) error {
	if err := checkUserTag(tag); err != nil {
		return err
	}
	s.mu.Lock()
	s.recvs[tag] = h
	s.mu.Unlock()
	return nil
}

// HandleSendDefault registers a catch-all consumer for pushed data whose tag
// has no specific handler.
func (s *Server) HandleSendDefault(h func(tag uint32, m *wire.Message) error) {
	s.mu.Lock()
	s.defaultSend = h
	s.mu.Unlock()
}

// HandleRecvDefault registers a catch-all producer for requested tags with
// no specific handler.
func (s *Server) HandleRecvDefault(h func(tag uint32) (*wire.Message, error)) {
	s.mu.Lock()
	s.defaultRecv = h
	s.mu.Unlock()
}

// Stats returns a copy of the counters.
func (s *Server) Stats() ServerStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// Serve accepts simulation connections until the listener fails or the
// server closes.
func (s *Server) Serve(l net.Listener) error {
	go func() {
		<-s.closed
		l.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil
			default:
				return err
			}
		}
		go s.ServeConn(conn)
	}
}

// ServeConn runs the protocol on one simulation connection.
func (s *Server) ServeConn(conn net.Conn) error {
	defer conn.Close()
	s.count(func(st *ServerStats) { st.Connections++ })

	dec := wire.NewDecoder(conn)
	enc := wire.NewEncoder(conn)

	// Authentication handshake.
	if s.cfg.IdleTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	}
	hello, err := dec.Expect(tagAuth)
	if err != nil {
		return err
	}
	pw, err := hello.AsString()
	if err != nil || pw != s.cfg.Password {
		s.count(func(st *ServerStats) { st.AuthFailed++ })
		writeErr(enc, "bad password")
		return ErrAuth
	}
	if err := enc.Int(tagOK, 1); err != nil {
		return err
	}

	for {
		select {
		case <-s.closed:
			return nil
		default:
		}
		if s.cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		op, err := dec.Expect(tagOp)
		if err != nil {
			return err
		}
		ints, err := op.AsInt64s()
		if err != nil || len(ints) != 2 {
			writeErr(enc, "malformed op frame")
			return err
		}
		code, userTag := int32(ints[0]), uint32(ints[1])

		switch code {
		case opPing:
			s.count(func(st *ServerStats) { st.Pings++ })
			if err := enc.Int(tagOK, 1); err != nil {
				return err
			}

		case opSend:
			data, err := dec.Next()
			if err != nil {
				return err
			}
			s.mu.RLock()
			h := s.sends[userTag]
			def := s.defaultSend
			s.mu.RUnlock()
			if h == nil && def != nil {
				h = func(m *wire.Message) error { return def(userTag, m) }
			}
			if h == nil {
				s.count(func(st *ServerStats) { st.Errors++ })
				writeErr(enc, ErrNoHandler.Error())
				continue
			}
			if err := h(data); err != nil {
				s.count(func(st *ServerStats) { st.Errors++ })
				writeErr(enc, err.Error())
				continue
			}
			s.count(func(st *ServerStats) { st.Sends++ })
			if err := enc.Int(tagOK, 1); err != nil {
				return err
			}

		case opRecv:
			s.mu.RLock()
			h := s.recvs[userTag]
			defR := s.defaultRecv
			s.mu.RUnlock()
			if h == nil && defR != nil {
				h = func() (*wire.Message, error) { return defR(userTag) }
			}
			if h == nil {
				s.count(func(st *ServerStats) { st.Errors++ })
				writeErr(enc, ErrNoHandler.Error())
				continue
			}
			m, err := h()
			if err != nil {
				s.count(func(st *ServerStats) { st.Errors++ })
				writeErr(enc, err.Error())
				continue
			}
			m.Header.Tag = userTag
			s.count(func(st *ServerStats) { st.Recvs++ })
			if err := enc.Message(m); err != nil {
				return err
			}

		default:
			writeErr(enc, "unknown op")
		}
	}
}

// Close stops the server; active connections terminate on their next op.
func (s *Server) Close() {
	s.once.Do(func() { close(s.closed) })
}

func (s *Server) count(f func(*ServerStats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}
