package visit

import (
	"errors"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/wire"
)

// ErrStopped is what a VISIT simulation's recv returns after a steering
// client stopped the session: the sim's next loop-boundary exchange is how
// the stop reaches it.
var ErrStopped = errors.New("visit: session stopped")

// Bridge hosts the visualization end of VISIT on a core steering session —
// the thin shim that puts VISIT-instrumented simulations on the hub without
// touching their instrumentation. The sim keeps its tagged send/recv calls;
// the bridge maps them onto the session's steering surface:
//
//   - a recv of a bound parameter tag applies queued steers (the sim's recv
//     IS its loop boundary) and returns the registered parameters' current
//     values, so hub clients steer the sim through the ordinary typed
//     parameter registry;
//   - a send of a bound channel tag re-publishes the pushed array as a
//     session sample, so hub clients observe the sim's diagnostics over the
//     ordinary sample stream, tiers and journal included.
type Bridge struct {
	srv *Server
	st  *core.Steered

	mu     sync.Mutex
	values map[string]float64 // bound parameter name → latest applied value
	steps  map[uint32]int64   // bound channel tag → sample step counter
}

// FloatSpec declares one steerable float the bridge registers on the
// session and serves to the simulation.
type FloatSpec struct {
	Name     string
	Initial  float64
	Min, Max float64
	Help     string
}

// NewBridge returns a bridge serving the VISIT protocol configured by cfg,
// bound to the given session's steering surface.
func NewBridge(cfg ServerConfig, session *core.Session) *Bridge {
	return &Bridge{
		srv:    NewServer(cfg),
		st:     session.Steered(),
		values: make(map[string]float64),
		steps:  make(map[uint32]int64),
	}
}

// Server exposes the underlying VISIT server (extra handlers, stats).
func (b *Bridge) Server() *Server { return b.srv }

// Serve accepts simulation connections from a listener.
func (b *Bridge) Serve(l net.Listener) error { return b.srv.Serve(l) }

// ServeConn runs the protocol on one simulation connection.
func (b *Bridge) ServeConn(conn net.Conn) error { return b.srv.ServeConn(conn) }

// Close stops accepting and terminates active simulation connections on
// their next exchange.
func (b *Bridge) Close() { b.srv.Close() }

// BindParams registers the specs as steerable session parameters and serves
// their current values — in spec order, as a float64 array — to the
// simulation under the given recv tag. The recv doubles as the steering
// poll: queued parameter sets are applied first, and a stopped session
// fails the recv with ErrStopped so the simulation terminates its loop.
func (b *Bridge) BindParams(tag uint32, specs []FloatSpec) error {
	names := make([]string, len(specs))
	for i, spec := range specs {
		spec := spec
		names[i] = spec.Name
		b.mu.Lock()
		b.values[spec.Name] = spec.Initial
		b.mu.Unlock()
		err := b.st.RegisterFloat(spec.Name, spec.Initial, spec.Min, spec.Max, spec.Help,
			func(v float64) {
				b.mu.Lock()
				b.values[spec.Name] = v
				b.mu.Unlock()
			})
		if err != nil {
			return err
		}
	}
	return b.srv.HandleRecv(tag, func() (*wire.Message, error) {
		if b.st.Poll() == core.ControlStop {
			return nil, ErrStopped
		}
		b.mu.Lock()
		vals := make([]float64, len(names))
		for i, name := range names {
			vals[i] = b.values[name]
		}
		b.mu.Unlock()
		return &wire.Message{
			Header:   wire.Header{Kind: wire.KindFloat64, Count: uint32(len(vals))},
			Float64s: vals,
		}, nil
	})
}

// BindChannel re-publishes float64 arrays the simulation pushes under the
// given send tag as session samples on the named channel (scalars when the
// array has one element). Each push advances the tag's step counter.
func (b *Bridge) BindChannel(tag uint32, channel string) error {
	return b.srv.HandleSend(tag, func(m *wire.Message) error {
		vals, err := m.AsFloat64s()
		if err != nil {
			return err
		}
		b.mu.Lock()
		b.steps[tag]++
		step := b.steps[tag]
		b.mu.Unlock()
		s := core.NewSample(step)
		if len(vals) == 1 {
			s.Channels[channel] = core.Scalar(vals[0])
		} else {
			s.Channels[channel] = core.Channel{Dims: [3]int{len(vals), 1, 1}, Data: vals}
		}
		b.st.Emit(s)
		return nil
	})
}
