package visit

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// startServer runs a Server on a loopback listener.
func startServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	srv := NewServer(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(srv.Close)
	return srv, l.Addr().String()
}

func TestSendReceivesAtServer(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{Password: "pw"})
	got := make(chan []float64, 1)
	srv.HandleSend(10, func(m *wire.Message) error {
		v, err := m.AsFloat64s()
		if err != nil {
			return err
		}
		got <- v
		return nil
	})

	sim := NewSim(TCPDialer(addr), "pw")
	defer sim.Close()
	if err := sim.SendFloat64s(10, []float64{1, 2, 3}, time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if len(v) != 3 || v[0] != 1 || v[2] != 3 {
			t.Fatalf("server got %v", v)
		}
	case <-time.After(time.Second):
		t.Fatal("server never received the data")
	}
	if srv.Stats().Sends != 1 {
		t.Fatalf("stats.Sends = %d", srv.Stats().Sends)
	}
}

func TestServerSideConversion(t *testing.T) {
	// The simulation pushes float32; the server reads float64: conversion is
	// the server's job per section 3.2.
	srv, addr := startServer(t, ServerConfig{})
	got := make(chan []float64, 1)
	srv.HandleSend(11, func(m *wire.Message) error {
		v, err := m.AsFloat64s()
		if err != nil {
			return err
		}
		got <- v
		return nil
	})
	sim := NewSim(TCPDialer(addr), "")
	defer sim.Close()
	if err := sim.SendFloat32s(11, []float32{1.5, -2}, time.Second); err != nil {
		t.Fatal(err)
	}
	v := <-got
	if v[0] != 1.5 || v[1] != -2 {
		t.Fatalf("converted = %v", v)
	}
}

func TestRecvParameters(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{Password: "pw"})
	srv.HandleRecv(20, func() (*wire.Message, error) {
		return &wire.Message{
			Header:   wire.Header{Kind: wire.KindFloat64, Count: 2},
			Float64s: []float64{4.5, 0.1},
		}, nil
	})
	sim := NewSim(TCPDialer(addr), "pw")
	defer sim.Close()
	m, err := sim.Recv(20, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.AsFloat64s()
	if err != nil || v[0] != 4.5 {
		t.Fatalf("recv = %v, %v", v, err)
	}
}

func TestAuthRejected(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{Password: "secret"})
	sim := NewSim(TCPDialer(addr), "wrong")
	defer sim.Close()
	if err := sim.Ping(time.Second); !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
	if srv.Stats().AuthFailed != 1 {
		t.Fatal("auth failure not counted")
	}
}

func TestNoHandlerError(t *testing.T) {
	_, addr := startServer(t, ServerConfig{})
	sim := NewSim(TCPDialer(addr), "")
	defer sim.Close()
	if err := sim.SendFloat64s(99, []float64{1}, time.Second); err == nil {
		t.Fatal("send to unhandled tag succeeded")
	}
	if _, err := sim.Recv(98, time.Second); err == nil {
		t.Fatal("recv from unhandled tag succeeded")
	}
	// The connection survives remote rejections.
	if err := sim.Ping(time.Second); err != nil {
		t.Fatalf("connection lost after remote error: %v", err)
	}
	if sim.Stats().Reconnects != 0 {
		t.Fatal("remote errors must not force reconnects")
	}
}

func TestTimeoutGuarantee(t *testing.T) {
	// A visualization that accepts the connection and then never responds:
	// the simulation-side call must return by its deadline.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			// Read forever, never reply.
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()

	sim := NewSim(TCPDialer(l.Addr().String()), "pw")
	defer sim.Close()
	const timeout = 80 * time.Millisecond
	start := time.Now()
	err = sim.Ping(timeout)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed > 4*timeout {
		t.Fatalf("call returned after %v, far beyond the %v guarantee", elapsed, timeout)
	}
	if sim.Stats().Timeouts != 1 {
		t.Fatalf("Timeouts = %d", sim.Stats().Timeouts)
	}
}

func TestDeadServerFailsFastAndRecovers(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{})
	srv.HandleSend(5, func(m *wire.Message) error { return nil })
	sim := NewSim(TCPDialer(addr), "")
	defer sim.Close()
	if err := sim.SendFloat64s(5, []float64{1}, time.Second); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	time.Sleep(10 * time.Millisecond)
	// Operations fail but return promptly.
	start := time.Now()
	sim.SendFloat64s(5, []float64{2}, 100*time.Millisecond)
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("failure not bounded by timeout")
	}

	// A replacement server at a new address: the simulation reconnects via
	// its dialer (here we swap the dialer to the new address).
	srv2, addr2 := startServer(t, ServerConfig{})
	srv2.HandleSend(5, func(m *wire.Message) error { return nil })
	sim2 := NewSim(TCPDialer(addr2), "")
	defer sim2.Close()
	if err := sim2.SendFloat64s(5, []float64{3}, time.Second); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
}

func TestSimOverShapedLink(t *testing.T) {
	// VISIT over a transatlantic link still completes within a generous
	// timeout; the latency shows up in elapsed time.
	srv := NewServer(ServerConfig{})
	srv.HandleSend(7, func(m *wire.Message) error { return nil })
	a, b := netsim.Pipe(netsim.Profile{Latency: 20 * time.Millisecond})
	go srv.ServeConn(b)
	defer srv.Close()

	sim := NewSim(func() (net.Conn, error) { return a, nil }, "")
	defer sim.Close()
	start := time.Now()
	if err := sim.SendFloat64s(7, []float64{1, 2}, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// Auth round trip + op round trip ≥ 4 one-way latencies.
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("latency unaccounted: %v", elapsed)
	}
}

func TestTagValidation(t *testing.T) {
	sim := NewSim(TCPDialer("127.0.0.1:1"), "")
	defer sim.Close()
	if err := sim.SendFloat64s(tagAuth, []float64{1}, time.Second); err == nil {
		t.Fatal("protocol tag accepted as user tag")
	}
	srv := NewServer(ServerConfig{})
	if err := srv.HandleSend(tagOp, func(*wire.Message) error { return nil }); err == nil {
		t.Fatal("protocol tag registered as handler")
	}
}

func TestClosedSim(t *testing.T) {
	sim := NewSim(TCPDialer("127.0.0.1:1"), "")
	sim.Close()
	if err := sim.Ping(time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// ---- broker tests ----

// vizHarness is one fake visualization for broker tests.
type vizHarness struct {
	srv    *Server
	addr   string
	frames chan []float64
	params []float64
	mu     sync.Mutex
}

func newVizHarness(t *testing.T, password string) *vizHarness {
	t.Helper()
	h := &vizHarness{frames: make(chan []float64, 64), params: []float64{0}}
	h.srv = NewServer(ServerConfig{Password: password})
	h.srv.HandleSend(1, func(m *wire.Message) error {
		v, err := m.AsFloat64s()
		if err != nil {
			return err
		}
		h.frames <- v
		return nil
	})
	h.srv.HandleRecv(2, func() (*wire.Message, error) {
		h.mu.Lock()
		defer h.mu.Unlock()
		return &wire.Message{
			Header:   wire.Header{Kind: wire.KindFloat64, Count: uint32(len(h.params))},
			Float64s: append([]float64(nil), h.params...),
		}, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go h.srv.Serve(l)
	t.Cleanup(h.srv.Close)
	h.addr = l.Addr().String()
	return h
}

func (h *vizHarness) setParams(v []float64) {
	h.mu.Lock()
	h.params = append([]float64(nil), v...)
	h.mu.Unlock()
}

func startBroker(t *testing.T, cfg BrokerConfig) (*Broker, string) {
	t.Helper()
	b := NewBroker(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go b.Serve(l)
	t.Cleanup(b.Close)
	return b, l.Addr().String()
}

func TestBrokerFansOutSends(t *testing.T) {
	v1 := newVizHarness(t, "")
	v2 := newVizHarness(t, "")
	v3 := newVizHarness(t, "")
	b, addr := startBroker(t, BrokerConfig{Password: "sim-pw"})
	for name, h := range map[string]*vizHarness{"juelich": v1, "manchester": v2, "phoenix": v3} {
		if err := b.AttachViz(name, TCPDialer(h.addr), ""); err != nil {
			t.Fatal(err)
		}
	}

	sim := NewSim(TCPDialer(addr), "sim-pw")
	defer sim.Close()
	if err := sim.SendFloat64s(1, []float64{9, 8}, time.Second); err != nil {
		t.Fatal(err)
	}
	for i, h := range []*vizHarness{v1, v2, v3} {
		select {
		case v := <-h.frames:
			if v[0] != 9 {
				t.Fatalf("viz %d got %v", i, v)
			}
		case <-time.After(time.Second):
			t.Fatalf("viz %d never received the frame", i)
		}
	}
	st := b.Stats()
	if st.SendsIn != 1 || st.SendsFanned != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBrokerRecvOnlyFromMaster(t *testing.T) {
	v1 := newVizHarness(t, "")
	v2 := newVizHarness(t, "")
	v1.setParams([]float64{111})
	v2.setParams([]float64{222})

	b, addr := startBroker(t, BrokerConfig{})
	b.AttachViz("first", TCPDialer(v1.addr), "")
	b.AttachViz("second", TCPDialer(v2.addr), "")
	if b.Master() != "first" {
		t.Fatalf("master = %q, want first attached", b.Master())
	}

	sim := NewSim(TCPDialer(addr), "")
	defer sim.Close()
	m, err := sim.Recv(2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.AsFloat64s(); v[0] != 111 {
		t.Fatalf("recv from %v, want master's 111", v)
	}

	// Move the master role and receive again: coordinated cooperative
	// steering.
	if err := b.SetMaster("second"); err != nil {
		t.Fatal(err)
	}
	m, err = sim.Recv(2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.AsFloat64s(); v[0] != 222 {
		t.Fatalf("recv = %v after handoff, want 222", v)
	}
}

func TestBrokerNoMaster(t *testing.T) {
	_, addr := startBroker(t, BrokerConfig{})
	sim := NewSim(TCPDialer(addr), "")
	defer sim.Close()
	if _, err := sim.Recv(2, time.Second); err == nil {
		t.Fatal("recv succeeded with no master attached")
	}
}

func TestBrokerSetMasterUnknown(t *testing.T) {
	b, _ := startBroker(t, BrokerConfig{})
	if err := b.SetMaster("ghost"); err == nil {
		t.Fatal("unknown master accepted")
	}
}

func TestBrokerDetachMasterPromotes(t *testing.T) {
	v1 := newVizHarness(t, "")
	v2 := newVizHarness(t, "")
	b, _ := startBroker(t, BrokerConfig{})
	b.AttachViz("a", TCPDialer(v1.addr), "")
	b.AttachViz("b", TCPDialer(v2.addr), "")
	b.DetachViz("a")
	if b.Master() != "b" {
		t.Fatalf("master = %q after detach, want b", b.Master())
	}
	if got := b.Vizs(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("vizs = %v", got)
	}
}

func TestBrokerSurvivesDeadViz(t *testing.T) {
	v1 := newVizHarness(t, "")
	v2 := newVizHarness(t, "")
	b, addr := startBroker(t, BrokerConfig{VizTimeout: 150 * time.Millisecond, MaxFailures: 2})
	b.AttachViz("live", TCPDialer(v1.addr), "")
	b.AttachViz("dead", TCPDialer(v2.addr), "")
	v2.srv.Close() // kill one visualization abruptly
	time.Sleep(10 * time.Millisecond)

	sim := NewSim(TCPDialer(addr), "")
	defer sim.Close()
	// The simulation keeps sending; the live viz keeps receiving; after
	// MaxFailures the dead one is detached.
	for i := 0; i < 4; i++ {
		if err := sim.SendFloat64s(1, []float64{float64(i)}, 2*time.Second); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	got := 0
	for {
		select {
		case <-v1.frames:
			got++
			continue
		default:
		}
		break
	}
	if got != 4 {
		t.Fatalf("live viz received %d/4 frames", got)
	}
	if vs := b.Vizs(); len(vs) != 1 || vs[0] != "live" {
		t.Fatalf("dead viz not detached: %v", vs)
	}
	if b.Stats().VizsDetached != 1 {
		t.Fatalf("stats = %+v", b.Stats())
	}
}

func TestBrokerAttachFailsForUnreachableViz(t *testing.T) {
	b, _ := startBroker(t, BrokerConfig{VizTimeout: 100 * time.Millisecond})
	if err := b.AttachViz("ghost", TCPDialer("127.0.0.1:1"), ""); err == nil {
		t.Fatal("attach to unreachable viz succeeded")
	}
}

func TestBrokerDuplicateAttach(t *testing.T) {
	v := newVizHarness(t, "")
	b, _ := startBroker(t, BrokerConfig{})
	if err := b.AttachViz("x", TCPDialer(v.addr), ""); err != nil {
		t.Fatal(err)
	}
	if err := b.AttachViz("x", TCPDialer(v.addr), ""); err == nil {
		t.Fatal("duplicate attach accepted")
	}
}
