// Package visit reimplements the VISualization Interface Toolkit of the
// paper's section 3.2: a lightweight library for online visualization and
// computational steering in which the *simulation* is the client and the
// *visualization* is the server — "all operations (like opening a
// connection, sending data to be visualized or receiving new parameters)
// have to be initiated by the simulation and are guaranteed to complete (or
// fail) after a user-specified timeout".
//
// Messages are tagged and typed (package wire) in the MPI style; any
// byte-order or precision conversion is performed by the receiving server so
// the simulation is disturbed as little as possible. Authentication is a
// clear-text connection password — the weakness the paper points out and
// resolves by running VISIT through UNICORE (package unicore).
//
// The package also provides the vbroker collaboration multiplexer of
// section 3.3: send-requests are fanned out to every participating
// visualization so "everyone views the same data", while receive-requests
// are served only by the current master, and the master role can be moved
// for coordinated cooperative steering.
package visit

import (
	"errors"
	"fmt"

	"repro/internal/wire"
)

// Control tags of the VISIT exchange protocol. User payload tags must stay
// below tagAuth.
const (
	tagAuth = 0xF1510000 + iota
	tagOp
	tagOK
	tagErr
)

// MaxUserTag is the highest tag application payloads may use.
const MaxUserTag = 0xF150FFFF

// op codes carried in a tagOp frame as [op, userTag].
const (
	opSend int32 = iota + 1
	opRecv
	opPing
)

// Errors reported by the package.
var (
	// ErrTimeout reports that an operation did not complete within its
	// user-specified timeout. The guarantee of section 3.2 is that every
	// simulation-side call returns by its deadline with this (or success).
	ErrTimeout = errors.New("visit: operation timed out")
	// ErrAuth reports a rejected connection password.
	ErrAuth = errors.New("visit: authentication failed")
	// ErrNoHandler reports that the server has no handler for the tag.
	ErrNoHandler = errors.New("visit: no handler for tag")
	// ErrClosed reports use of a closed endpoint.
	ErrClosed = errors.New("visit: endpoint closed")
	// ErrNoMaster reports a receive-request with no master attached.
	ErrNoMaster = errors.New("visit: no master visualization attached")
)

// remoteError wraps an error string sent by the peer.
type remoteError struct{ msg string }

func (e *remoteError) Error() string { return "visit: remote: " + e.msg }

// checkUserTag validates an application payload tag.
func checkUserTag(tag uint32) error {
	if tag > MaxUserTag {
		return fmt.Errorf("visit: tag %#x collides with protocol tags", tag)
	}
	return nil
}

// writeErr sends an error frame; failures are ignored (the peer is already
// suspect).
func writeErr(enc *wire.Encoder, msg string) {
	_ = enc.String(tagErr, msg)
}
