package netsim

import (
	"io"
	"testing"

	"repro/internal/wire"
)

// testDecoder reads bridged frames from a unicast connection.
type testDecoder struct{ dec *wire.Decoder }

func newTestDecoder(r io.Reader) *testDecoder {
	return &testDecoder{dec: wire.NewDecoder(r)}
}

func (d *testDecoder) next(t *testing.T) (from string, payload []byte, err error) {
	t.Helper()
	m, err := d.dec.Expect(BridgeTag)
	if err != nil {
		return "", nil, err
	}
	from, payload, ok := Unframe(m.Blobs[0])
	if !ok {
		t.Fatalf("malformed bridge frame: %v", m.Blobs[0])
	}
	return from, payload, nil
}

// writeBridgeFrame sends a frame into the bridge on behalf of a unicast site.
func writeBridgeFrame(w io.Writer, from string, payload []byte) error {
	return wire.NewEncoder(w).Bytes(BridgeTag, frame(from, payload))
}
