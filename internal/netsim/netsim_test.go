package netsim

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestPipeBasicTransfer(t *testing.T) {
	a, b := Pipe(Loopback)
	defer a.Close()
	defer b.Close()

	msg := []byte("hello collaborative steering")
	go func() {
		if _, err := a.Write(msg); err != nil {
			t.Error(err)
		}
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("got %q want %q", buf, msg)
	}
}

func TestPipeLatency(t *testing.T) {
	const lat = 30 * time.Millisecond
	a, b := Pipe(Profile{Latency: lat})
	defer a.Close()
	defer b.Close()

	start := time.Now()
	go a.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < lat {
		t.Fatalf("delivery after %v, want >= %v", elapsed, lat)
	}
	if elapsed > 5*lat {
		t.Fatalf("delivery after %v, far exceeds %v", elapsed, lat)
	}
}

func TestPipeBandwidthSerialisation(t *testing.T) {
	// 1 MB at 10 MB/s should take ~100 ms on top of zero latency.
	a, b := Pipe(Profile{Bandwidth: 10e6})
	defer a.Close()
	defer b.Close()

	payload := make([]byte, 1<<20)
	start := time.Now()
	go func() {
		a.Write(payload)
	}()
	buf := make([]byte, len(payload))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond {
		t.Fatalf("1MB at 10MB/s arrived in %v, want >= ~100ms", elapsed)
	}
}

func TestPipeOrderingAcrossWrites(t *testing.T) {
	a, b := Pipe(Profile{Latency: time.Millisecond})
	defer a.Close()
	defer b.Close()

	go func() {
		for i := 0; i < 50; i++ {
			a.Write([]byte{byte(i)})
		}
	}()
	buf := make([]byte, 50)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if buf[i] != byte(i) {
			t.Fatalf("byte %d = %d, out of order", i, buf[i])
		}
	}
}

func TestPipeReadDeadline(t *testing.T) {
	a, b := Pipe(Loopback)
	defer a.Close()
	defer b.Close()

	b.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 1)
	_, err := b.Read(buf)
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("err = %v, want net.Error timeout", err)
	}
}

func TestPipeDeadlineDoesNotLoseData(t *testing.T) {
	a, b := Pipe(Profile{Latency: 50 * time.Millisecond})
	defer a.Close()
	defer b.Close()

	go a.Write([]byte("late"))
	b.SetReadDeadline(time.Now().Add(5 * time.Millisecond))
	buf := make([]byte, 4)
	if _, err := b.Read(buf); err == nil {
		t.Fatal("expected timeout on first read")
	}
	b.SetReadDeadline(time.Time{})
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "late" {
		t.Fatalf("got %q after deadline retry", buf)
	}
}

func TestPipeCloseGivesEOFAfterDrain(t *testing.T) {
	a, b := Pipe(Loopback)
	if _, err := a.Write([]byte("bye")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	buf := make([]byte, 3)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatalf("drain after close: %v", err)
	}
	if _, err := b.Read(buf); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestPipeWriteAfterCloseFails(t *testing.T) {
	a, b := Pipe(Loopback)
	b.Close()
	a.Close()
	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("want error writing to closed link")
	}
}

func TestAsymmetricPipe(t *testing.T) {
	// a→b slow, b→a fast.
	a, b := AsymmetricPipe(Profile{Latency: 40 * time.Millisecond}, Loopback)
	defer a.Close()
	defer b.Close()

	start := time.Now()
	go b.Write([]byte("q"))
	buf := make([]byte, 1)
	io.ReadFull(a, buf)
	if fast := time.Since(start); fast > 20*time.Millisecond {
		t.Fatalf("fast direction took %v", fast)
	}

	start = time.Now()
	go a.Write([]byte("r"))
	io.ReadFull(b, buf)
	if slow := time.Since(start); slow < 40*time.Millisecond {
		t.Fatalf("slow direction took only %v", slow)
	}
}

func TestMulticastFanOut(t *testing.T) {
	n := NewNetwork()
	g := n.Group("233.2.171.1:9999")
	sender := g.Join("hlrs", Loopback)
	var members []*Member
	for _, name := range []string{"manchester", "juelich", "phoenix"} {
		members = append(members, g.Join(name, Loopback))
	}

	if err := sender.Send([]byte("frame-1")); err != nil {
		t.Fatal(err)
	}
	for _, m := range members {
		p, err := m.Recv(time.Second)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if p.From != "hlrs" || string(p.Payload) != "frame-1" {
			t.Fatalf("%s got %+v", m.Name(), p)
		}
	}
	// Sender must not hear its own packet.
	if _, ok := sender.TryRecv(); ok {
		t.Fatal("sender received its own multicast")
	}
}

func TestMulticastLossIsDeterministic(t *testing.T) {
	count := func() uint64 {
		n := NewNetwork()
		g := n.Group("g")
		s := g.Join("s", Loopback)
		r := g.Join("r", Profile{Loss: 0.5, Seed: 42})
		for i := 0; i < 200; i++ {
			s.Send([]byte{byte(i)})
		}
		time.Sleep(10 * time.Millisecond)
		return r.Drops()
	}
	d1, d2 := count(), count()
	if d1 == 0 || d1 == 200 {
		t.Fatalf("drops = %d, want partial loss", d1)
	}
	if d1 != d2 {
		t.Fatalf("loss not deterministic: %d vs %d", d1, d2)
	}
}

func TestMulticastLeave(t *testing.T) {
	n := NewNetwork()
	g := n.Group("g")
	s := g.Join("s", Loopback)
	r := g.Join("r", Loopback)
	r.Leave()
	if g.MemberCount() != 1 {
		t.Fatalf("members = %d, want 1", g.MemberCount())
	}
	s.Send([]byte("x"))
	if _, err := r.Recv(10 * time.Millisecond); err != ErrMemberClosed {
		t.Fatalf("err = %v, want ErrMemberClosed", err)
	}
	if err := r.Send(nil); err != ErrMemberClosed {
		t.Fatalf("send after leave: %v", err)
	}
}

func TestMulticastConcurrentSenders(t *testing.T) {
	n := NewNetwork()
	g := n.Group("g")
	recv := g.Join("recv", Loopback)
	const senders, each = 8, 50

	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		m := g.Join(string(rune('a'+i)), Loopback)
		wg.Add(1)
		go func(m *Member) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				m.Send([]byte{1})
			}
		}(m)
	}
	wg.Wait()

	got := 0
	for {
		if _, ok := recv.TryRecv(); !ok {
			break
		}
		got++
	}
	if got != senders*each {
		t.Fatalf("received %d packets, want %d", got, senders*each)
	}
}

func TestBridgeRelaysMulticastToUnicast(t *testing.T) {
	n := NewNetwork()
	g := n.Group("venue-video")
	src := g.Join("cave", Loopback)

	br := NewBridge(g, "bridge", Loopback)
	defer br.Close()

	a, b := Pipe(Loopback) // b = NAT'd site end
	defer b.Close()
	go br.Subscribe(a)

	time.Sleep(5 * time.Millisecond) // let subscription register
	if err := src.Send([]byte("stereo-frame")); err != nil {
		t.Fatal(err)
	}

	dec := newTestDecoder(b)
	from, payload, err := dec.next(t)
	if err != nil {
		t.Fatal(err)
	}
	if from != "cave" || string(payload) != "stereo-frame" {
		t.Fatalf("bridged frame = %q from %q", payload, from)
	}
	if br.Relayed() != 1 {
		t.Fatalf("relayed = %d", br.Relayed())
	}
}

func TestBridgeInjectsUnicastIntoGroup(t *testing.T) {
	n := NewNetwork()
	g := n.Group("venue-video")
	listener := g.Join("listener", Loopback)

	br := NewBridge(g, "bridge", Loopback)
	defer br.Close()

	a, b := Pipe(Loopback)
	defer b.Close()
	go br.Subscribe(a)
	time.Sleep(5 * time.Millisecond)

	if err := writeBridgeFrame(b, "nat-site", []byte("hello-group")); err != nil {
		t.Fatal(err)
	}
	p, err := listener.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	from, payload, ok := Unframe(p.Payload)
	if !ok || from != "nat-site" || string(payload) != "hello-group" {
		t.Fatalf("injected packet = %+v (from=%q payload=%q)", p, from, payload)
	}
}

func TestUnframeMalformed(t *testing.T) {
	if _, _, ok := Unframe([]byte{1, 2}); ok {
		t.Fatal("short frame accepted")
	}
	if _, _, ok := Unframe([]byte{0, 0, 0, 200, 'x'}); ok {
		t.Fatal("overlong name accepted")
	}
}
