// Package netsim provides deterministic wide-area-network emulation for the
// experiments in this repository. The paper's collaborative-steering sessions
// span "intra and inter-continental networks" (SuperJanet, G-WiN,
// UK↔US links); netsim substitutes those with in-memory links whose one-way
// latency, jitter and bandwidth are configurable, plus simulated multicast
// groups and the unicast/multicast bridges Access Grid sites behind NAT
// require (paper section 4.6).
package netsim

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Profile describes one direction of a network path.
type Profile struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter).
	Jitter time.Duration
	// Bandwidth is the link rate in bytes per second; 0 means unlimited.
	Bandwidth float64
	// Loss is the packet-loss probability in [0,1) for datagram transports.
	// Stream links (Pipe) never lose data.
	Loss float64
	// Seed makes jitter and loss deterministic; 0 selects a fixed default.
	Seed int64
}

// Common profiles used throughout the experiments.
var (
	// LAN approximates a machine-room network.
	LAN = Profile{Latency: 200 * time.Microsecond, Bandwidth: 125e6} // 1 Gb/s
	// Metro approximates a same-city academic network.
	Metro = Profile{Latency: 2 * time.Millisecond, Bandwidth: 12.5e6} // 100 Mb/s
	// National approximates SuperJanet-era UK national links (UCL→Manchester).
	National = Profile{Latency: 8 * time.Millisecond, Bandwidth: 12.5e6}
	// Transatlantic approximates the UK↔Phoenix showcase-floor path.
	Transatlantic = Profile{Latency: 45 * time.Millisecond, Bandwidth: 2.5e6} // 20 Mb/s
	// Loopback is an unshaped in-memory link.
	Loopback = Profile{}
)

// transmitDelay returns the serialisation time of n bytes at the profile's
// bandwidth.
func (p Profile) transmitDelay(n int) time.Duration {
	if p.Bandwidth <= 0 || n == 0 {
		return 0
	}
	return time.Duration(float64(n) / p.Bandwidth * float64(time.Second))
}

// chunk is one write travelling down a link direction.
type chunk struct {
	data      []byte
	deliverAt time.Time
}

// ErrLinkClosed is returned by operations on a closed link end.
var ErrLinkClosed = errors.New("netsim: link closed")

// timeoutError satisfies net.Error with Timeout() == true so shaped links
// behave like real conns under SetDeadline.
type timeoutError struct{}

func (timeoutError) Error() string   { return "netsim: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// linkAddr is the net.Addr of a simulated link end.
type linkAddr string

func (a linkAddr) Network() string { return "netsim" }
func (a linkAddr) String() string  { return string(a) }

// halfLink carries data in one direction.
type halfLink struct {
	profile Profile
	rng     *rand.Rand

	mu        sync.Mutex
	busyUntil time.Time // sender serialisation horizon

	ch     chan chunk
	closed chan struct{}
	once   sync.Once
}

func newHalfLink(p Profile) *halfLink {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	return &halfLink{
		profile: p,
		rng:     rand.New(rand.NewSource(seed)),
		ch:      make(chan chunk, 4096),
		closed:  make(chan struct{}),
	}
}

func (h *halfLink) close() {
	h.once.Do(func() { close(h.closed) })
}

// send enqueues data with its computed delivery time.
func (h *halfLink) send(b []byte, deadline time.Time) (int, error) {
	data := make([]byte, len(b))
	copy(data, b)

	h.mu.Lock()
	now := time.Now()
	start := now
	if h.busyUntil.After(start) {
		start = h.busyUntil
	}
	txDone := start.Add(h.profile.transmitDelay(len(b)))
	h.busyUntil = txDone
	delay := h.profile.Latency
	if h.profile.Jitter > 0 {
		delay += time.Duration(h.rng.Int63n(int64(h.profile.Jitter)))
	}
	c := chunk{data: data, deliverAt: txDone.Add(delay)}
	h.mu.Unlock()

	var timer <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		timer = t.C
	}
	select {
	case h.ch <- c:
		return len(b), nil
	case <-h.closed:
		return 0, ErrLinkClosed
	case <-timer:
		return 0, timeoutError{}
	}
}

// End is one endpoint of a shaped bidirectional link. It implements net.Conn.
type End struct {
	name    string
	in, out *halfLink

	mu            sync.Mutex
	pending       chunk // partially consumed or not-yet-deliverable chunk
	readDeadline  time.Time
	writeDeadline time.Time
}

var _ net.Conn = (*End)(nil)

// Pipe returns the two endpoints of a link shaped by p in both directions.
// It is the shaped analogue of net.Pipe.
func Pipe(p Profile) (*End, *End) {
	return AsymmetricPipe(p, p)
}

// AsymmetricPipe returns a link with distinct per-direction profiles: ab
// shapes data flowing a→b, ba shapes data flowing b→a. Asymmetry models the
// showcase scenario where bulk samples flow one way and small steering
// commands the other.
func AsymmetricPipe(ab, ba Profile) (a, b *End) {
	abHalf := newHalfLink(ab)
	baHalf := newHalfLink(ba)
	a = &End{name: "netsim-a", in: baHalf, out: abHalf}
	b = &End{name: "netsim-b", in: abHalf, out: baHalf}
	return a, b
}

// Read implements net.Conn. Data becomes readable only once its simulated
// delivery time has passed.
func (e *End) Read(b []byte) (int, error) {
	e.mu.Lock()
	deadline := e.readDeadline
	// Serve from a pending chunk first.
	if e.pending.data != nil {
		c := e.pending
		e.mu.Unlock()
		return e.deliver(b, c, deadline)
	}
	e.mu.Unlock()

	var timer <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		timer = t.C
	}
	select {
	case c := <-e.in.ch:
		return e.deliver(b, c, deadline)
	case <-e.in.closed:
		// Drain anything already queued before reporting EOF.
		select {
		case c := <-e.in.ch:
			return e.deliver(b, c, deadline)
		default:
			return 0, io.EOF
		}
	case <-timer:
		return 0, timeoutError{}
	}
}

// deliver waits for the chunk's delivery time, then copies as much as fits,
// stashing any remainder.
func (e *End) deliver(b []byte, c chunk, deadline time.Time) (int, error) {
	wait := time.Until(c.deliverAt)
	if wait > 0 {
		if !deadline.IsZero() && c.deliverAt.After(deadline) {
			e.stash(c)
			time.Sleep(time.Until(deadline))
			return 0, timeoutError{}
		}
		time.Sleep(wait)
	}
	n := copy(b, c.data)
	if n < len(c.data) {
		c.data = c.data[n:]
		e.stash(c)
	} else {
		e.clearPending()
	}
	return n, nil
}

func (e *End) stash(c chunk) {
	e.mu.Lock()
	e.pending = c
	e.mu.Unlock()
}

func (e *End) clearPending() {
	e.mu.Lock()
	e.pending = chunk{}
	e.mu.Unlock()
}

// Write implements net.Conn.
func (e *End) Write(b []byte) (int, error) {
	e.mu.Lock()
	deadline := e.writeDeadline
	e.mu.Unlock()
	select {
	case <-e.out.closed:
		return 0, ErrLinkClosed
	default:
	}
	return e.out.send(b, deadline)
}

// Close closes both directions. The peer's reads drain queued data and then
// report EOF.
func (e *End) Close() error {
	e.in.close()
	e.out.close()
	return nil
}

// LocalAddr implements net.Conn.
func (e *End) LocalAddr() net.Addr { return linkAddr(e.name) }

// RemoteAddr implements net.Conn.
func (e *End) RemoteAddr() net.Addr { return linkAddr(e.name + "-peer") }

// SetDeadline implements net.Conn.
func (e *End) SetDeadline(t time.Time) error {
	e.mu.Lock()
	e.readDeadline, e.writeDeadline = t, t
	e.mu.Unlock()
	return nil
}

// SetReadDeadline implements net.Conn.
func (e *End) SetReadDeadline(t time.Time) error {
	e.mu.Lock()
	e.readDeadline = t
	e.mu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn.
func (e *End) SetWriteDeadline(t time.Time) error {
	e.mu.Lock()
	e.writeDeadline = t
	e.mu.Unlock()
	return nil
}
