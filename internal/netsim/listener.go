package netsim

import (
	"net"
	"sync"
)

// MemListener is an in-memory net.Listener whose connections are shaped
// Pipes. The UNICORE tiers use it for their internal links so that a whole
// Vsite (gateway + NJS + TSI + running jobs) exposes exactly one real
// listening port — the gateway's — reproducing the paper's
// "firewall-friendliness; handling of all communication over a single fixed
// TCP server-port".
type MemListener struct {
	profile Profile

	mu     sync.Mutex
	queue  chan net.Conn
	closed bool
}

var _ net.Listener = (*MemListener)(nil)

// NewMemListener returns a listener whose accepted conns are shaped by p.
func NewMemListener(p Profile) *MemListener {
	return &MemListener{profile: p, queue: make(chan net.Conn, 64)}
}

// Dial creates a new connection pair, queues the server end for Accept, and
// returns the client end.
func (l *MemListener) Dial() (net.Conn, error) {
	client, server := Pipe(l.profile)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		client.Close()
		server.Close()
		return nil, ErrLinkClosed
	}
	// The send cannot block while mu is held: it either queues or fails.
	select {
	case l.queue <- server:
		return client, nil
	default:
		client.Close()
		server.Close()
		return nil, ErrLinkClosed
	}
}

// Accept implements net.Listener.
func (l *MemListener) Accept() (net.Conn, error) {
	conn, ok := <-l.queue
	if !ok {
		return nil, ErrLinkClosed
	}
	return conn, nil
}

// Close implements net.Listener.
func (l *MemListener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.queue)
	}
	return nil
}

// Addr implements net.Listener.
func (l *MemListener) Addr() net.Addr { return linkAddr("netsim-mem") }
