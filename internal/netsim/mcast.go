package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Packet is one datagram delivered through a simulated multicast group.
type Packet struct {
	From    string
	Seq     uint64
	Payload []byte
}

// Network is a collection of named multicast groups, standing in for the
// native-multicast MBone the Access Grid used for vic/rat streams.
type Network struct {
	mu     sync.Mutex
	groups map[string]*Group
}

// NewNetwork returns an empty simulated network.
func NewNetwork() *Network {
	return &Network{groups: make(map[string]*Group)}
}

// Group returns the multicast group with the given address, creating it on
// first use (multicast groups have no owner).
func (n *Network) Group(addr string) *Group {
	n.mu.Lock()
	defer n.mu.Unlock()
	g, ok := n.groups[addr]
	if !ok {
		g = &Group{addr: addr, members: make(map[*Member]struct{})}
		n.groups[addr] = g
	}
	return g
}

// Group is one simulated multicast group. Every packet sent by a member is
// fanned out to all other members, shaped by each receiver's profile.
type Group struct {
	addr string

	mu      sync.Mutex
	members map[*Member]struct{}
	seq     uint64
}

// Addr returns the group address.
func (g *Group) Addr() string { return g.addr }

// MemberCount reports the current number of joined members.
func (g *Group) MemberCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.members)
}

// Join adds a member whose inbound packets are shaped by p. The name
// identifies the member in Packet.From.
func (g *Group) Join(name string, p Profile) *Member {
	seed := p.Seed
	if seed == 0 {
		seed = int64(len(name)) + 7
	}
	m := &Member{
		group:   g,
		name:    name,
		profile: p,
		rng:     rand.New(rand.NewSource(seed)),
		inbox:   make(chan Packet, 4096),
		closed:  make(chan struct{}),
	}
	g.mu.Lock()
	g.members[m] = struct{}{}
	g.mu.Unlock()
	return m
}

// send fans a payload out to every member except the sender.
func (g *Group) send(from *Member, payload []byte) {
	g.mu.Lock()
	g.seq++
	seq := g.seq
	targets := make([]*Member, 0, len(g.members))
	for m := range g.members {
		if m != from {
			targets = append(targets, m)
		}
	}
	g.mu.Unlock()

	for _, m := range targets {
		m.receive(Packet{From: from.name, Seq: seq, Payload: payload})
	}
}

func (g *Group) leave(m *Member) {
	g.mu.Lock()
	delete(g.members, m)
	g.mu.Unlock()
}

// ErrMemberClosed is returned on operations after Leave.
var ErrMemberClosed = errors.New("netsim: multicast member closed")

// Member is one participant in a multicast group.
type Member struct {
	group   *Group
	name    string
	profile Profile

	mu     sync.Mutex
	rng    *rand.Rand
	drops  uint64
	inbox  chan Packet
	closed chan struct{}
	once   sync.Once
}

// Name returns the member name.
func (m *Member) Name() string { return m.name }

// Send multicasts payload to every other member of the group.
func (m *Member) Send(payload []byte) error {
	select {
	case <-m.closed:
		return ErrMemberClosed
	default:
	}
	data := make([]byte, len(payload))
	copy(data, payload)
	m.group.send(m, data)
	return nil
}

// receive applies loss and delay, then queues the packet. Packets that would
// overflow the inbox are dropped, like real UDP.
func (m *Member) receive(p Packet) {
	m.mu.Lock()
	if m.profile.Loss > 0 && m.rng.Float64() < m.profile.Loss {
		m.drops++
		m.mu.Unlock()
		return
	}
	delay := m.profile.Latency + m.profile.transmitDelay(len(p.Payload))
	if m.profile.Jitter > 0 {
		delay += time.Duration(m.rng.Int63n(int64(m.profile.Jitter)))
	}
	m.mu.Unlock()

	if delay <= 0 {
		m.enqueue(p)
		return
	}
	time.AfterFunc(delay, func() { m.enqueue(p) })
}

func (m *Member) enqueue(p Packet) {
	select {
	case m.inbox <- p:
	case <-m.closed:
	default:
		m.mu.Lock()
		m.drops++
		m.mu.Unlock()
	}
}

// Recv blocks for the next packet or until the timeout elapses (0 waits
// forever).
func (m *Member) Recv(timeout time.Duration) (Packet, error) {
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case p := <-m.inbox:
		return p, nil
	case <-m.closed:
		select {
		case p := <-m.inbox:
			return p, nil
		default:
			return Packet{}, ErrMemberClosed
		}
	case <-timer:
		return Packet{}, timeoutError{}
	}
}

// TryRecv returns the next packet without blocking.
func (m *Member) TryRecv() (Packet, bool) {
	select {
	case p := <-m.inbox:
		return p, true
	default:
		return Packet{}, false
	}
}

// Drops reports how many packets were lost (by loss probability or overflow).
func (m *Member) Drops() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.drops
}

// Leave removes the member from its group.
func (m *Member) Leave() {
	m.once.Do(func() {
		m.group.leave(m)
		close(m.closed)
	})
}

// String implements fmt.Stringer.
func (m *Member) String() string {
	return fmt.Sprintf("%s@%s", m.name, m.group.addr)
}
