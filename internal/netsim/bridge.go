package netsim

import (
	"encoding/binary"
	"sync"
	"time"

	"repro/internal/wire"
)

// Bridge relays between a simulated multicast group and point-to-point
// unicast connections. It reproduces the Access Grid venue-server extension
// of section 4.6: "virtual environment systems are often behind firewalls
// which do not support multicast and sometimes even do NAT. Thus, we added
// support for unicast/multicast bridges and point to point sessions."
//
// Each unicast subscriber gets packets framed as wire messages
// (tag = BridgeTag, payload = sender-name length-prefixed + payload), and
// anything a subscriber writes is multicast into the group on its behalf.
type Bridge struct {
	member *Member

	mu      sync.Mutex
	subs    map[*bridgeSub]struct{}
	closed  bool
	done    chan struct{}
	relayed uint64
}

// BridgeTag is the wire tag used for bridged multicast frames.
const BridgeTag = 0xB71D

type bridgeSub struct {
	enc  *wire.Encoder
	conn interface{ Close() error }
	mu   sync.Mutex
}

// NewBridge joins the group as a relay member named name and starts
// forwarding multicast traffic to subscribers.
func NewBridge(g *Group, name string, p Profile) *Bridge {
	b := &Bridge{
		member: g.Join(name, p),
		subs:   make(map[*bridgeSub]struct{}),
		done:   make(chan struct{}),
	}
	go b.pump()
	return b
}

// frame encodes a packet as sender-name + payload.
func frame(from string, payload []byte) []byte {
	out := make([]byte, 0, 4+len(from)+len(payload))
	out = binary.BigEndian.AppendUint32(out, uint32(len(from)))
	out = append(out, from...)
	out = append(out, payload...)
	return out
}

// Unframe splits a bridged frame back into sender name and payload.
func Unframe(b []byte) (from string, payload []byte, ok bool) {
	if len(b) < 4 {
		return "", nil, false
	}
	n := binary.BigEndian.Uint32(b[:4])
	if int(n) > len(b)-4 {
		return "", nil, false
	}
	return string(b[4 : 4+n]), b[4+n:], true
}

func (b *Bridge) pump() {
	for {
		p, err := b.member.Recv(100 * time.Millisecond)
		if err != nil {
			select {
			case <-b.done:
				return
			default:
				continue // timeout: poll again so Close is noticed
			}
		}
		b.mu.Lock()
		b.relayed++
		for s := range b.subs {
			s.mu.Lock()
			err := s.enc.Bytes(BridgeTag, frame(p.From, p.Payload))
			s.mu.Unlock()
			if err != nil {
				delete(b.subs, s)
				s.conn.Close()
			}
		}
		b.mu.Unlock()
	}
}

// Subscribe attaches a unicast connection (anything with wire framing over a
// stream). The bridge forwards group traffic to it and multicasts frames it
// sends. It returns when the connection fails or the bridge closes.
func (b *Bridge) Subscribe(conn interface {
	Read([]byte) (int, error)
	Write([]byte) (int, error)
	Close() error
}) error {
	sub := &bridgeSub{enc: wire.NewEncoder(conn), conn: conn}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrMemberClosed
	}
	b.subs[sub] = struct{}{}
	b.mu.Unlock()

	dec := wire.NewDecoder(conn)
	for {
		m, err := dec.Next()
		if err != nil {
			b.mu.Lock()
			delete(b.subs, sub)
			b.mu.Unlock()
			return err
		}
		if m.Header.Kind == wire.KindBytes && len(m.Blobs) == 1 {
			if err := b.member.Send(m.Blobs[0]); err != nil {
				return err
			}
		}
	}
}

// Relayed reports how many multicast packets have been forwarded to
// subscribers.
func (b *Bridge) Relayed() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.relayed
}

// Close detaches the bridge from the group and closes all subscribers.
func (b *Bridge) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*bridgeSub, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.subs = make(map[*bridgeSub]struct{})
	b.mu.Unlock()

	close(b.done)
	b.member.Leave()
	for _, s := range subs {
		s.conn.Close()
	}
}
