package accessgrid

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/netsim"
)

func TestCreateVenueWithDefaultStreams(t *testing.T) {
	vs := NewVenueServer()
	v, err := vs.CreateVenue("SC03 Showcase", "Phoenix show floor")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vs.CreateVenue("SC03 Showcase", "dup"); err == nil {
		t.Fatal("duplicate venue accepted")
	}
	streams := v.Streams()
	if len(streams) != 2 || streams[0].Name != "audio" || streams[1].Name != "video" {
		t.Fatalf("default streams = %v", streams)
	}
	if streams[0].Kind.String() != "audio" || streams[1].Kind.String() != "video" {
		t.Fatal("stream kinds wrong")
	}
	if got := vs.Venues(); len(got) != 1 || got[0] != "SC03 Showcase" {
		t.Fatalf("venues = %v", got)
	}
}

func TestPresence(t *testing.T) {
	vs := NewVenueServer()
	v, _ := vs.CreateVenue("venue", "")
	if _, err := v.Enter("brooke", "manchester"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Enter("brooke", "elsewhere"); err == nil {
		t.Fatal("duplicate participant accepted")
	}
	v.Enter("eickermann", "juelich")
	ps := v.Participants()
	if len(ps) != 2 || ps[0].Name != "brooke" {
		t.Fatalf("participants = %v", ps)
	}
	v.Exit("brooke")
	if len(v.Participants()) != 1 {
		t.Fatal("exit failed")
	}
	evs := v.Events()
	if len(evs) != 3 || evs[2] != "exit:brooke" {
		t.Fatalf("events = %v", evs)
	}
}

func TestMediaStreamFanOut(t *testing.T) {
	vs := NewVenueServer()
	v, _ := vs.CreateVenue("venue", "")
	video, _ := v.Stream("video")

	sender := video.Join("hlrs-cam", netsim.Loopback)
	rx1 := video.Join("phoenix", netsim.Loopback)
	rx2 := video.Join("juelich", netsim.Loopback)

	if err := sender.Send([]byte("h261-frame-1")); err != nil {
		t.Fatal(err)
	}
	for _, rx := range []*netsim.Member{rx1, rx2} {
		p, err := rx.Recv(time.Second)
		if err != nil || string(p.Payload) != "h261-frame-1" {
			t.Fatalf("%s: %v %q", rx.Name(), err, p.Payload)
		}
	}
}

func TestVenueIsolation(t *testing.T) {
	vs := NewVenueServer()
	v1, _ := vs.CreateVenue("room-1", "")
	v2, _ := vs.CreateVenue("room-2", "")
	s1, _ := v1.Stream("video")
	s2, _ := v2.Stream("video")
	tx := s1.Join("tx", netsim.Loopback)
	rx := s2.Join("rx", netsim.Loopback)
	tx.Send([]byte("leak?"))
	if _, ok := rx.TryRecv(); ok {
		t.Fatal("media leaked between venues")
	}
}

func TestNATBridge(t *testing.T) {
	vs := NewVenueServer()
	v, _ := vs.CreateVenue("venue", "")
	video, _ := v.Stream("video")
	cam := video.Join("cave-cam", netsim.Loopback)

	bridge := video.Bridge("bridge-1", netsim.Loopback)
	defer bridge.Close()
	a, b := netsim.Pipe(netsim.Loopback)
	defer b.Close()
	go bridge.Subscribe(a)
	time.Sleep(5 * time.Millisecond)

	if err := cam.Send([]byte("stereo-left")); err != nil {
		t.Fatal(err)
	}
	// The NAT'd site reads the bridged frame off its unicast conn.
	buf := make([]byte, 512)
	b.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := b.Read(buf)
	if err != nil || n == 0 {
		t.Fatalf("bridged frame not delivered: %v", err)
	}
	if !bytes.Contains(buf[:n], []byte("stereo-left")) {
		t.Fatal("payload mangled through bridge")
	}
}

func TestSharedApplications(t *testing.T) {
	vs := NewVenueServer()
	v, _ := vs.CreateVenue("venue", "")
	err := v.RegisterApp(AppDescriptor{
		Name: "building-analysis", Type: "covise-session",
		Endpoint: "covise://hlrs:31000/map-editor",
		Data:     map[string]string{"map": "carshow.net"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.RegisterApp(AppDescriptor{Name: "building-analysis", Type: "covise-session"}); err == nil {
		t.Fatal("duplicate app accepted")
	}
	if err := v.RegisterApp(AppDescriptor{Name: "x"}); err == nil {
		t.Fatal("descriptor without type accepted")
	}
	apps := v.FindApps("covise-session")
	if len(apps) != 1 || apps[0].Endpoint != "covise://hlrs:31000/map-editor" {
		t.Fatalf("apps = %v", apps)
	}
	v.UnregisterApp("building-analysis")
	if len(v.Apps()) != 0 {
		t.Fatal("unregister failed")
	}
}

func TestAdminHTTP(t *testing.T) {
	vs := NewVenueServer()
	srv := httptest.NewServer(AdminHandler(vs))
	defer srv.Close()

	post := func(path string, body any) *http.Response {
		t.Helper()
		raw, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Create a venue.
	resp := post("/venues", map[string]string{"name": "SC03", "description": "showcase"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Enter two participants and register an app.
	post("/venues/SC03/enter", map[string]string{"name": "brooke", "site": "manchester"}).Body.Close()
	post("/venues/SC03/enter", map[string]string{"name": "woessner", "site": "hlrs"}).Body.Close()
	post("/venues/SC03/apps", AppDescriptor{Name: "covise", Type: "covise-session", Endpoint: "x"}).Body.Close()

	// Read the venue state back.
	getResp, err := http.Get(srv.URL + "/venues/SC03")
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	var out struct {
		OK     bool `json:"ok"`
		Result struct {
			Name         string              `json:"name"`
			Participants []map[string]string `json:"participants"`
			Streams      []map[string]string `json:"streams"`
			Apps         []AppDescriptor     `json:"apps"`
		} `json:"result"`
	}
	if err := json.NewDecoder(getResp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.OK || out.Result.Name != "SC03" {
		t.Fatalf("venue view = %+v", out)
	}
	if len(out.Result.Participants) != 2 || len(out.Result.Streams) != 2 || len(out.Result.Apps) != 1 {
		t.Fatalf("venue view = %+v", out.Result)
	}

	// Exit.
	post("/venues/SC03/exit", map[string]string{"name": "brooke"}).Body.Close()

	// Errors.
	if resp := post("/venues", map[string]string{"name": "SC03"}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate venue status = %d", resp.StatusCode)
	}
	if getResp, _ := http.Get(srv.URL + "/venues/nope"); getResp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing venue status = %d", getResp.StatusCode)
	}
}
