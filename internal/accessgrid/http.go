package accessgrid

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// AdminHandler exposes the venue server over HTTP for the venued daemon:
//
//	GET  /venues                   -> venue names
//	POST /venues                   {"name","description"} -> created venue
//	GET  /venues/<name>            -> venue state (participants, streams, apps)
//	POST /venues/<name>/enter      {"name","site"}
//	POST /venues/<name>/exit       {"name"}
//	POST /venues/<name>/apps       AppDescriptor JSON
func AdminHandler(vs *VenueServer) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/venues", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeOK(w, vs.Venues())
		case http.MethodPost:
			var body struct{ Name, Description string }
			if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			v, err := vs.CreateVenue(body.Name, body.Description)
			if err != nil {
				writeErr(w, http.StatusConflict, err)
				return
			}
			writeOK(w, venueView(v))
		default:
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("accessgrid: unsupported method"))
		}
	})

	mux.HandleFunc("/venues/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/venues/")
		parts := strings.SplitN(rest, "/", 2)
		v, ok := vs.Venue(parts[0])
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("accessgrid: no venue %q", parts[0]))
			return
		}
		action := ""
		if len(parts) == 2 {
			action = parts[1]
		}
		switch {
		case action == "" && r.Method == http.MethodGet:
			writeOK(w, venueView(v))
		case action == "enter" && r.Method == http.MethodPost:
			var body struct{ Name, Site string }
			if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			if _, err := v.Enter(body.Name, body.Site); err != nil {
				writeErr(w, http.StatusConflict, err)
				return
			}
			writeOK(w, map[string]bool{"entered": true})
		case action == "exit" && r.Method == http.MethodPost:
			var body struct{ Name string }
			if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			v.Exit(body.Name)
			writeOK(w, map[string]bool{"exited": true})
		case action == "apps" && r.Method == http.MethodPost:
			var app AppDescriptor
			if err := json.NewDecoder(r.Body).Decode(&app); err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			if err := v.RegisterApp(app); err != nil {
				writeErr(w, http.StatusConflict, err)
				return
			}
			writeOK(w, map[string]bool{"registered": true})
		default:
			writeErr(w, http.StatusNotFound, fmt.Errorf("accessgrid: unknown action %q", action))
		}
	})
	return mux
}

// venueView is the JSON projection of a venue.
func venueView(v *Venue) map[string]any {
	streams := make([]map[string]string, 0)
	for _, s := range v.Streams() {
		streams = append(streams, map[string]string{
			"name": s.Name, "kind": s.Kind.String(), "addr": s.Addr,
		})
	}
	participants := make([]map[string]string, 0)
	for _, p := range v.Participants() {
		participants = append(participants, map[string]string{"name": p.Name, "site": p.Site})
	}
	return map[string]any{
		"name":         v.Name,
		"description":  v.Description,
		"streams":      streams,
		"participants": participants,
		"apps":         v.Apps(),
	}
}

func writeOK(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"ok": true, "result": v})
}

func writeErr(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{"ok": false, "err": err.Error()})
}
