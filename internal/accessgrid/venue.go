// Package accessgrid implements the Access Grid collaboration substrate the
// paper's demonstrations run inside: a venue server hosting Virtual Venues,
// per-venue multicast media streams (the vic/rat video and audio channels),
// participant presence, and — per section 4.6 — the HLRS extensions: venue
// state that "allows the start-up of shared applications" (COVISE sessions)
// and "support for unicast/multicast bridges and point to point sessions"
// for sites behind firewalls and NAT.
package accessgrid

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/netsim"
)

// StreamKind classifies a media stream.
type StreamKind uint8

// Stream kinds.
const (
	StreamVideo StreamKind = iota + 1
	StreamAudio
)

// String returns the kind name.
func (k StreamKind) String() string {
	switch k {
	case StreamVideo:
		return "video"
	case StreamAudio:
		return "audio"
	default:
		return "unknown"
	}
}

// AppDescriptor advertises a shared application session startable from a
// venue: the COVISE integration stores its session endpoint here.
type AppDescriptor struct {
	Name string
	// Type identifies the application kind, e.g. "covise-session".
	Type string
	// Endpoint is how participants connect (address, session id...).
	Endpoint string
	// Data carries application-specific startup information.
	Data map[string]string
}

// Stream is one media channel of a venue.
type Stream struct {
	Name string
	Kind StreamKind
	// Addr is the simulated multicast address.
	Addr  string
	group *netsim.Group
}

// Join subscribes a receiver to the stream with the given network profile.
func (s *Stream) Join(member string, p netsim.Profile) *netsim.Member {
	return s.group.Join(member, p)
}

// Bridge creates a unicast/multicast bridge on this stream for NAT'd sites.
func (s *Stream) Bridge(name string, p netsim.Profile) *netsim.Bridge {
	return netsim.NewBridge(s.group, name, p)
}

// Participant is one person/site present in a venue.
type Participant struct {
	Name    string
	Site    string
	Entered time.Time
}

// Venue is one Virtual Venue: "the power of Access Grid [lies] in being able
// to coordinate multiple channels of communication within a virtual space
// (the Virtual Venue of the meeting)" (section 1).
type Venue struct {
	Name        string
	Description string

	net *netsim.Network

	mu           sync.Mutex
	participants map[string]*Participant
	streams      map[string]*Stream
	apps         map[string]*AppDescriptor
	events       []string
}

// Enter adds a participant; duplicate names are rejected.
func (v *Venue) Enter(name, site string) (*Participant, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, dup := v.participants[name]; dup {
		return nil, fmt.Errorf("accessgrid: %q already in venue %q", name, v.Name)
	}
	p := &Participant{Name: name, Site: site, Entered: time.Now()}
	v.participants[name] = p
	v.events = append(v.events, "enter:"+name)
	return p, nil
}

// Exit removes a participant.
func (v *Venue) Exit(name string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.participants[name]; ok {
		delete(v.participants, name)
		v.events = append(v.events, "exit:"+name)
	}
}

// Participants lists present participants, sorted by name.
func (v *Venue) Participants() []*Participant {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*Participant, 0, len(v.participants))
	for _, p := range v.participants {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddStream creates a media stream on the venue's multicast network.
func (v *Venue) AddStream(name string, kind StreamKind) (*Stream, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, dup := v.streams[name]; dup {
		return nil, fmt.Errorf("accessgrid: stream %q exists in venue %q", name, v.Name)
	}
	addr := fmt.Sprintf("233.2.171.%d:%d/%s/%s", len(v.streams)+1, 9000+len(v.streams), v.Name, name)
	s := &Stream{Name: name, Kind: kind, Addr: addr, group: v.net.Group(addr)}
	v.streams[name] = s
	return s, nil
}

// Stream fetches a stream by name.
func (v *Venue) Stream(name string) (*Stream, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	s, ok := v.streams[name]
	return s, ok
}

// Streams lists the venue's streams sorted by name.
func (v *Venue) Streams() []*Stream {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*Stream, 0, len(v.streams))
	for _, s := range v.streams {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RegisterApp stores a shared-application descriptor in the venue.
func (v *Venue) RegisterApp(app AppDescriptor) error {
	if app.Name == "" || app.Type == "" {
		return fmt.Errorf("accessgrid: app descriptor needs name and type")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, dup := v.apps[app.Name]; dup {
		return fmt.Errorf("accessgrid: app %q already registered in venue %q", app.Name, v.Name)
	}
	a := app
	v.apps[app.Name] = &a
	return nil
}

// UnregisterApp removes a shared-application descriptor.
func (v *Venue) UnregisterApp(name string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.apps, name)
}

// Apps lists registered shared applications sorted by name.
func (v *Venue) Apps() []AppDescriptor {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]AppDescriptor, 0, len(v.apps))
	for _, a := range v.apps {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FindApps returns descriptors of a given type.
func (v *Venue) FindApps(typ string) []AppDescriptor {
	var out []AppDescriptor
	for _, a := range v.Apps() {
		if a.Type == typ {
			out = append(out, a)
		}
	}
	return out
}

// Events returns the presence event log.
func (v *Venue) Events() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]string(nil), v.events...)
}

// VenueServer hosts venues.
type VenueServer struct {
	net *netsim.Network

	mu     sync.Mutex
	venues map[string]*Venue
}

// NewVenueServer creates a server with its own simulated multicast network.
func NewVenueServer() *VenueServer {
	return &VenueServer{net: netsim.NewNetwork(), venues: make(map[string]*Venue)}
}

// CreateVenue adds a venue with the standard video+audio streams.
func (vs *VenueServer) CreateVenue(name, description string) (*Venue, error) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if _, dup := vs.venues[name]; dup {
		return nil, fmt.Errorf("accessgrid: venue %q exists", name)
	}
	v := &Venue{
		Name:         name,
		Description:  description,
		net:          vs.net,
		participants: make(map[string]*Participant),
		streams:      make(map[string]*Stream),
		apps:         make(map[string]*AppDescriptor),
	}
	vs.venues[name] = v
	// Every venue starts with the standard AG media channels. The venue is
	// not yet visible to other goroutines (vs.mu held), so these cannot
	// contend.
	if _, err := v.AddStream("video", StreamVideo); err != nil {
		return nil, err
	}
	if _, err := v.AddStream("audio", StreamAudio); err != nil {
		return nil, err
	}
	return v, nil
}

// Venue fetches a venue by name.
func (vs *VenueServer) Venue(name string) (*Venue, bool) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	v, ok := vs.venues[name]
	return v, ok
}

// Venues lists venue names sorted.
func (vs *VenueServer) Venues() []string {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	out := make([]string, 0, len(vs.venues))
	for n := range vs.venues {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
