// Ablation benchmarks for the design choices the reproduction makes (see
// DESIGN.md): the Barnes–Hut acceptance parameter, delta- vs key-frame
// encoding, COVISE's demand-driven re-execution, the simulations' worker
// pools, and the monopole+dipole expansion.
package main

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/covise"
	"repro/internal/pixel"
	"repro/internal/render"
	"repro/internal/sim/lb"
	"repro/internal/sim/pepc"
	"repro/internal/viz"
)

// BenchmarkAblation_TreeTheta sweeps the multipole acceptance parameter:
// larger theta is faster but less accurate. The RMS force error against
// direct summation is reported per theta.
func BenchmarkAblation_TreeTheta(b *testing.B) {
	sim, err := pepc.New(pepc.Params{Theta: 0.5, Dt: 0.01, Eps: 0.05, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	sim.AddPlasmaBall(2000, pepc.Vec{}, 1.0, 0.05)
	exact := sim.ForcesDirect()

	for _, theta := range []float64{0.2, 0.5, 0.9} {
		b.Run(fmt.Sprintf("theta=%.1f", theta), func(b *testing.B) {
			var forces []pepc.Vec
			for i := 0; i < b.N; i++ {
				forces = sim.ForcesTree(theta)
			}
			b.StopTimer()
			var errSq, magSq float64
			for i := range forces {
				d := forces[i].Sub(exact[i])
				errSq += d.Dot(d)
				magSq += exact[i].Dot(exact[i])
			}
			b.ReportMetric(math.Sqrt(errSq/magSq)*100, "rms_err_%")
			b.ReportMetric(float64(sim.Interactions()), "interactions")
		})
	}
}

// BenchmarkAblation_FrameEncoding compares shipping a remote-rendered frame
// raw, as a compressed keyframe, and as a compressed delta after a small
// camera move.
func BenchmarkAblation_FrameEncoding(b *testing.B) {
	f := viz.NewScalarField(20, 20, 20)
	c := 9.5
	f.Fill(func(i, j, k int) float64 {
		dx, dy, dz := float64(i)-c, float64(j)-c, float64(k)-c
		return dx*dx + dy*dy + dz*dz
	})
	scene := &render.Scene{Meshes: []*render.Mesh{viz.Isosurface(f, 40, render.Blue)}}
	fb := render.NewFramebuffer(320, 240)
	cam := render.Camera{
		Eye: render.Vec3{X: 48, Y: 38, Z: 55}, Center: render.Vec3{X: 10, Y: 10, Z: 10},
		Up: render.Vec3{Y: 1}, FovY: 0.7854, Near: 0.1, Far: 1000,
	}
	render.Render(fb, cam, scene)
	prev := append([]byte(nil), fb.Pix...)
	cam.Eye.X += 0.3
	render.Render(fb, cam, scene)

	b.Run("raw", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			buf := make([]byte, len(fb.Pix))
			n = copy(buf, fb.Pix)
		}
		b.ReportMetric(float64(n), "bytes")
	})
	b.Run("keyframe", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			n = len(pixel.EncodeKey(fb.Pix))
		}
		b.ReportMetric(float64(n), "bytes")
	})
	b.Run("delta", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			d, err := pixel.EncodeDelta(prev, fb.Pix)
			if err != nil {
				b.Fatal(err)
			}
			n = len(d)
		}
		b.ReportMetric(float64(n), "bytes")
	})
}

// BenchmarkAblation_DemandDrivenExecution compares COVISE's dirty-flag
// re-execution (only downstream of the changed parameter) against forcing
// the whole pipeline, for a renderer-parameter change that should not
// recompute the cutting plane.
func BenchmarkAblation_DemandDrivenExecution(b *testing.B) {
	buildCtrl := func() (*covise.Controller, error) {
		field := viz.NewScalarField(24, 24, 24)
		field.Fill(func(i, j, k int) float64 { return float64(i + 2*j + 3*k) })
		host := covise.NewHost("h")
		c := covise.NewController()
		if err := c.AddModule("source", host, &covise.FieldSource{Provide: func() *viz.ScalarField { return field }}); err != nil {
			return nil, err
		}
		if err := c.AddModule("cut", host, &covise.CuttingPlane{}); err != nil {
			return nil, err
		}
		if err := c.AddModule("render", host, &covise.Renderer{Width: 160, Height: 120, LookAt: render.Vec3{X: 12, Y: 12, Z: 12}}); err != nil {
			return nil, err
		}
		if err := c.Connect("source", "field", "cut", "field"); err != nil {
			return nil, err
		}
		if err := c.Connect("cut", "geometry", "render", "geometry"); err != nil {
			return nil, err
		}
		c.SetParam("cut", "axis", 2)
		c.SetParam("cut", "index", 10)
		c.SetParam("render", "eyeX", 60)
		c.SetParam("render", "eyeY", 45)
		c.SetParam("render", "eyeZ", 70)
		_, err := c.Execute()
		return c, err
	}

	b.Run("demand-driven", func(b *testing.B) {
		c, err := buildCtrl()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.SetParam("render", "eyeX", 60+float64(i%5))
			if _, err := c.Execute(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(c.ModuleExecutions())/float64(c.Waves()), "modules/wave")
	})
	b.Run("force-all", func(b *testing.B) {
		c, err := buildCtrl()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.SetParam("render", "eyeX", 60+float64(i%5))
			c.MarkDirty("source")
			c.MarkDirty("cut")
			if _, err := c.Execute(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(c.ModuleExecutions())/float64(c.Waves()), "modules/wave")
	})
}

// BenchmarkAblation_LBWorkers sweeps the lattice-Boltzmann worker pool,
// the stand-in for the original code's MPI decomposition.
func BenchmarkAblation_LBWorkers(b *testing.B) {
	max := runtime.GOMAXPROCS(0)
	for _, w := range []int{1, 2, max} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			sim, err := lb.New(lb.Params{Nx: 24, Ny: 24, Nz: 24, Tau: 1, G: 4, Seed: 1, Workers: w})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Step()
			}
		})
	}
}

// BenchmarkAblation_PEPCWorkers sweeps the tree-force worker pool.
func BenchmarkAblation_PEPCWorkers(b *testing.B) {
	max := runtime.GOMAXPROCS(0)
	for _, w := range []int{1, 2, max} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			sim, err := pepc.New(pepc.Params{Theta: 0.5, Dt: 0.01, Eps: 0.05, Seed: 3, Workers: w})
			if err != nil {
				b.Fatal(err)
			}
			sim.AddPlasmaBall(3000, pepc.Vec{}, 1.0, 0.05)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.ForcesTree(0.5)
			}
		})
	}
}

// BenchmarkAblation_IsosurfaceResolution shows isosurface extraction cost and
// output size versus field resolution (the geometry-volume driver of E3/E12).
func BenchmarkAblation_IsosurfaceResolution(b *testing.B) {
	for _, n := range []int{12, 20, 28} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := viz.NewScalarField(n, n, n)
			c := float64(n-1) / 2
			f.Fill(func(i, j, k int) float64 {
				dx, dy, dz := float64(i)-c, float64(j)-c, float64(k)-c
				return math.Sqrt(dx*dx + dy*dy + dz*dz)
			})
			var tris int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mesh := viz.Isosurface(f, c*0.7, render.Blue)
				tris = len(mesh.Triangles)
			}
			b.StopTimer()
			b.ReportMetric(float64(tris), "triangles")
		})
	}
}
